/**
 * @file
 * Unit tests for the load queue and the unified store queue / store
 * buffer, including the forwarding and ordering searches the atomic
 * machinery depends on.
 */

#include <gtest/gtest.h>

#include "cpu/lsq.hh"

using namespace rowsim;

TEST(LoadQueue, FifoAllocateFree)
{
    LoadQueue lq(4);
    EXPECT_TRUE(lq.empty());
    lq.allocate(1, false);
    lq.allocate(2, false);
    EXPECT_EQ(lq.size(), 2u);
    EXPECT_EQ(lq.oldestSeq(), 1u);
    EXPECT_TRUE(lq.isOldest(1));
    EXPECT_FALSE(lq.isOldest(2));
    lq.freeHead(1);
    EXPECT_TRUE(lq.isOldest(2));
}

TEST(LoadQueue, FullAndWraparound)
{
    LoadQueue lq(2);
    lq.allocate(1, false);
    lq.allocate(2, false);
    EXPECT_TRUE(lq.full());
    lq.freeHead(1);
    unsigned idx = lq.allocate(3, true);
    EXPECT_TRUE(lq.entry(idx).isAtomic);
    EXPECT_TRUE(lq.full());
    EXPECT_EQ(lq.oldestSeq(), 2u);
}

TEST(LoadQueue, OutOfOrderFreePanics)
{
    LoadQueue lq(4);
    lq.allocate(1, false);
    lq.allocate(2, false);
    EXPECT_THROW(lq.freeHead(2), std::logic_error);
}

TEST(StoreQueue, ForwardFindsYoungestOlderMatch)
{
    StoreQueue sq(8);
    auto i1 = sq.allocate(1, false);
    auto i2 = sq.allocate(2, false);
    sq.entry(i1).addressReady = true;
    sq.entry(i1).addr = 0x100;
    sq.entry(i1).value = 11;
    sq.entry(i2).addressReady = true;
    sq.entry(i2).addr = 0x100;
    sq.entry(i2).value = 22;

    bool unknown = false;
    SqEntry *src = sq.forwardSource(5, 0x100, unknown);
    ASSERT_NE(src, nullptr);
    EXPECT_EQ(src->value, 22u); // youngest older match wins
    EXPECT_FALSE(unknown);
}

TEST(StoreQueue, ForwardIgnoresYoungerStores)
{
    StoreQueue sq(8);
    auto i1 = sq.allocate(10, false);
    sq.entry(i1).addressReady = true;
    sq.entry(i1).addr = 0x100;
    bool unknown = false;
    EXPECT_EQ(sq.forwardSource(5, 0x100, unknown), nullptr);
}

TEST(StoreQueue, UnresolvedOlderStoreFlagsUnknown)
{
    StoreQueue sq(8);
    sq.allocate(1, false); // address not ready
    bool unknown = false;
    EXPECT_EQ(sq.forwardSource(5, 0x100, unknown), nullptr);
    EXPECT_TRUE(unknown);
}

TEST(StoreQueue, WordGranularMatching)
{
    StoreQueue sq(8);
    auto i1 = sq.allocate(1, false);
    sq.entry(i1).addressReady = true;
    sq.entry(i1).addr = 0x100;
    bool unknown = false;
    // Same line, different word: no forwarding match.
    EXPECT_EQ(sq.forwardSource(5, 0x108, unknown), nullptr);
    // Same word, different byte offset: match.
    EXPECT_NE(sq.forwardSource(5, 0x104, unknown), nullptr);
}

TEST(StoreQueue, OlderSameLineSkipsAtomicsAndWritten)
{
    StoreQueue sq(8);
    auto stu = sq.allocate(1, true); // an atomic STU
    sq.entry(stu).addressReady = true;
    sq.entry(stu).addr = 0x100;
    auto reg = sq.allocate(2, false);
    sq.entry(reg).addressReady = true;
    sq.entry(reg).addr = 0x108; // same line as 0x100
    EXPECT_EQ(sq.olderSameLineUnwritten(5, 0x100), &sq.entry(reg));
    sq.entry(reg).written = true;
    EXPECT_EQ(sq.olderSameLineUnwritten(5, 0x100), nullptr);
}

TEST(StoreQueue, SbEmptyTracksCommittedUnwritten)
{
    StoreQueue sq(8);
    auto i1 = sq.allocate(1, false);
    EXPECT_TRUE(sq.sbEmpty()); // uncommitted entries are not in the SB
    sq.entry(i1).committed = true;
    EXPECT_FALSE(sq.sbEmpty());
    sq.entry(i1).written = true;
    EXPECT_TRUE(sq.sbEmpty());
}

TEST(StoreQueue, NoneOlderThan)
{
    StoreQueue sq(8);
    EXPECT_TRUE(sq.noneOlderThan(5));
    sq.allocate(3, false);
    EXPECT_FALSE(sq.noneOlderThan(5));
    EXPECT_TRUE(sq.noneOlderThan(3));
    EXPECT_TRUE(sq.noneOlderThan(2));
}

TEST(StoreQueue, HeadEntryAndDrainOrder)
{
    StoreQueue sq(4);
    sq.allocate(1, false);
    sq.allocate(2, false);
    ASSERT_NE(sq.headEntry(), nullptr);
    EXPECT_EQ(sq.headEntry()->seq, 1u);
    sq.freeHead(1);
    EXPECT_EQ(sq.headEntry()->seq, 2u);
    sq.freeHead(2);
    EXPECT_EQ(sq.headEntry(), nullptr);
}

TEST(StoreQueue, IndexOfRoundTrips)
{
    StoreQueue sq(4);
    auto idx = sq.allocate(9, false);
    EXPECT_EQ(sq.indexOf(&sq.entry(idx)), idx);
}
