/**
 * @file
 * Fault-injector tests: category parsing, deterministic replay (same
 * seed → cycle-identical execution), always-fire delay hooks, directory
 * stall recovery, and atomicity under forced evictions.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "sim/faults.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

std::unique_ptr<System>
makeFaultSystem(const std::string &faults, std::uint64_t fault_seed,
                unsigned rate, unsigned cores = 6, unsigned counters = 2)
{
    SystemParams sp;
    sp.numCores = cores;
    sp.faultCategories = faults;
    sp.faultSeed = fault_seed;
    sp.faultRate = rate;
    std::vector<std::unique_ptr<InstStream>> streams;
    for (CoreId c = 0; c < cores; c++) {
        std::vector<MicroOp> body;
        MicroOp ld;
        ld.cls = OpClass::Load;
        ld.addr = addrmap::privateLine(c, (c * 13) % 256);
        body.push_back(ld);
        for (unsigned k = 0; k < counters; k++) {
            MicroOp st;
            st.cls = OpClass::Store;
            st.addr = addrmap::sharedAtomicWord((c + k) % counters) + 8;
            st.value = c;
            body.push_back(st);
            MicroOp at;
            at.cls = OpClass::AtomicRMW;
            at.aop = AtomicOp::FetchAdd;
            at.addr = addrmap::sharedAtomicWord((c + k) % counters);
            at.value = 1;
            at.pc = 0x9000 + 4 * k;
            body.push_back(at);
        }
        body.back().endOfIteration = true;
        streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    }
    return std::make_unique<System>(sp, std::move(streams));
}

std::uint64_t
faultEvents(System &sys)
{
    StatGroup &s = sys.faults()->stats();
    return s.counterValue("delayedMessages") +
           s.counterValue("delayedUnblocks") +
           s.counterValue("injectedStalls") +
           s.counterValue("forcedEvictions");
}

} // namespace

TEST(FaultCategories, ParseKnownNames)
{
    EXPECT_EQ(parseFaultCategories("netdelay"),
              static_cast<std::uint32_t>(FaultCategory::NetDelay));
    EXPECT_EQ(parseFaultCategories("dirstall,evict"),
              static_cast<std::uint32_t>(FaultCategory::DirStall) |
                  static_cast<std::uint32_t>(FaultCategory::Evict));
    EXPECT_EQ(parseFaultCategories("UnblockDelay"),
              static_cast<std::uint32_t>(FaultCategory::UnblockDelay));
    EXPECT_EQ(parseFaultCategories("all"), faultCategoryAll);
    EXPECT_EQ(parseFaultCategories("none"), 0u);
    EXPECT_EQ(parseFaultCategories(""), 0u);
}

TEST(FaultCategories, UnknownNameIsFatal)
{
    EXPECT_THROW(parseFaultCategories("cosmicray"), std::runtime_error);
}

TEST(FaultInjection, SameSeedReplaysCycleForCycle)
{
    auto run_once = [](std::uint64_t seed) {
        auto sys = makeFaultSystem("all", seed, 400);
        sys->run(15);
        sys->drain();
        return std::make_tuple(
            sys->now(), sys->totalInstructions(),
            sys->mem().network().stats().counterValue("messages"),
            faultEvents(*sys));
    };
    const auto a = run_once(42);
    const auto b = run_once(42);
    EXPECT_EQ(a, b);
    // And the chaos actually did something.
    EXPECT_GT(std::get<3>(a), 0u);
}

TEST(FaultInjection, MaxRateDelayHookAlwaysFires)
{
    auto sys = makeFaultSystem("netdelay,unblockdelay", 7, 10000);
    ASSERT_NE(sys->faults(), nullptr);

    Msg m;
    m.type = MsgType::Unblock;
    const Cycle extra = sys->faults()->extraDelay(m, 0);
    // NetDelay contributes >= 1, UnblockDelay >= 8 at rate 10000.
    EXPECT_GE(extra, 9u);
    EXPECT_EQ(sys->faults()->stats().counterValue("delayedMessages"), 1u);
    EXPECT_EQ(sys->faults()->stats().counterValue("delayedUnblocks"), 1u);

    m.type = MsgType::GetS;
    EXPECT_GE(sys->faults()->extraDelay(m, 0), 1u);
    EXPECT_EQ(sys->faults()->stats().counterValue("delayedUnblocks"), 1u);
}

TEST(FaultInjection, InjectedStallsRecoverAndQuiesce)
{
    auto sys = makeFaultSystem("", 0, 0); // no injector, manual stall
    EXPECT_EQ(sys->faults(), nullptr);
    for (unsigned b = 0; b < sys->mem().numBanks(); b++)
        sys->mem().directory(b).injectStall(sys->now() + 60);
    EXPECT_TRUE(sys->mem().directory(0).stalled());
    sys->run(10);
    EXPECT_NO_THROW(sys->drain());
    for (unsigned b = 0; b < sys->mem().numBanks(); b++)
        EXPECT_FALSE(sys->mem().directory(b).stalled()) << "bank " << b;
}

TEST(FaultInjection, AtomicityHoldsUnderForcedEvictions)
{
    auto sys = makeFaultSystem("evict", 99, 2000, 8, 2);
    sys->run(20);
    sys->drain();
    std::uint64_t total = 0;
    for (CoreId c = 0; c < 8; c++)
        total += sys->core(c).committedAtomics();
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < 2; k++)
        sum += sys->mem().functional().read64(addrmap::sharedAtomicWord(k));
    EXPECT_EQ(sum, total);
    EXPECT_GT(sys->faults()->stats().counterValue("forcedEvictions"), 0u);
}

TEST(FaultInjection, AtomicityHoldsUnderFullChaos)
{
    auto sys = makeFaultSystem("all", 1234, 500, 8, 2);
    sys->run(20);
    sys->drain();
    std::uint64_t total = 0;
    for (CoreId c = 0; c < 8; c++)
        total += sys->core(c).committedAtomics();
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < 2; k++)
        sum += sys->mem().functional().read64(addrmap::sharedAtomicWord(k));
    EXPECT_EQ(sum, total);
}
