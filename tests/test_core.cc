/**
 * @file
 * Pipeline tests for the out-of-order core: dependency scheduling,
 * store-to-load forwarding, StoreSet replay, branch redirect bubbles,
 * fences, and the basic atomic execution paths — driven through small
 * single-core (or two-core) Systems with hand-written loop bodies.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/system.hh"

using namespace rowsim;

namespace
{

MicroOp
alu(unsigned lat = 1, std::uint32_t src0 = 0)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.execLatency = static_cast<std::uint16_t>(lat);
    op.src0 = src0;
    return op;
}

MicroOp
load(Addr a, std::uint32_t src0 = 0)
{
    MicroOp op;
    op.cls = OpClass::Load;
    op.addr = a;
    op.src0 = src0;
    return op;
}

MicroOp
store(Addr a, std::uint64_t v)
{
    MicroOp op;
    op.cls = OpClass::Store;
    op.addr = a;
    op.value = v;
    return op;
}

MicroOp
atomicFaa(Addr a, std::uint64_t v = 1, Addr pc = 0x9000)
{
    MicroOp op;
    op.cls = OpClass::AtomicRMW;
    op.aop = AtomicOp::FetchAdd;
    op.addr = a;
    op.value = v;
    op.pc = pc;
    return op;
}

MicroOp
branch(bool taken)
{
    MicroOp op;
    op.cls = OpClass::Branch;
    op.takenBranch = taken;
    op.pc = 0x7000;
    return op;
}

MicroOp
fence()
{
    MicroOp op;
    op.cls = OpClass::Fence;
    return op;
}

/** Build a single-core system around one loop body. */
std::unique_ptr<System>
makeSystem(std::vector<MicroOp> body, AtomicPolicy policy,
           unsigned cores = 1)
{
    body.back().endOfIteration = true;
    SystemParams sp;
    sp.numCores = cores;
    sp.core.atomicPolicy = policy;
    std::vector<std::unique_ptr<InstStream>> streams;
    for (unsigned c = 0; c < cores; c++)
        streams.push_back(std::make_unique<LoopStream>(body));
    return std::make_unique<System>(sp, std::move(streams));
}

} // namespace

TEST(CorePipeline, IndependentAluOpsReachWideIpc)
{
    std::vector<MicroOp> body(48, alu());
    auto sys = makeSystem(body, AtomicPolicy::Eager);
    Cycle c = sys->run(200);
    double ipc = 200.0 * 48 / static_cast<double>(c);
    EXPECT_GT(ipc, 5.0); // fetch width (6) bound
}

TEST(CorePipeline, DependentChainBoundByLatency)
{
    // One chain of 2-cycle ALU ops linked ACROSS iterations: the whole
    // run is a single serial dependence chain of length 100 * 32.
    std::vector<MicroOp> body;
    for (int i = 0; i < 32; i++)
        body.push_back(alu(2, 1));
    auto sys = makeSystem(body, AtomicPolicy::Eager);
    Cycle c = sys->run(100);
    EXPECT_GE(c, 100 * 32 * 2u);
    EXPECT_LT(c, 100 * 32 * 3u); // ...but not much more
}

TEST(CorePipeline, StoreToLoadForwardingBeatsCacheAccess)
{
    // store x -> load x (same word): value forwards from the SQ.
    auto sys = makeSystem({store(0x5000, 77), load(0x5000, 0), alu()},
                          AtomicPolicy::Eager);
    sys->run(50);
    EXPECT_GT(sys->core(0).stats().counterValue("loadsForwarded"), 10u);
}

TEST(CorePipeline, ForwardedValueIsTheStoredValue)
{
    auto sys = makeSystem({store(0x5000, 77), load(0x5000)},
                          AtomicPolicy::Eager);
    sys->run(20);
    sys->drain();
    EXPECT_EQ(sys->mem().functional().read64(0x5000), 77u);
}

TEST(CorePipeline, RandomBranchesInsertRedirectBubbles)
{
    // Alternating branches train quickly; per-iteration cost small.
    std::vector<MicroOp> body_predictable;
    for (int i = 0; i < 8; i++)
        body_predictable.push_back(branch(true));
    auto sys1 = makeSystem(body_predictable, AtomicPolicy::Eager);
    Cycle predictable = sys1->run(300);

    // The same volume of hard-to-predict branches must cost much more
    // (a mispredict stalls dispatch for ~mispredictPenalty).
    std::vector<MicroOp> body_random;
    for (int i = 0; i < 8; i++) {
        MicroOp b = branch(false);
        // Pseudo-random per-position pattern the gshare cannot fully learn
        // is hard to fake with a fixed loop; use distinct PCs with
        // conflicting biases through one iteration instead.
        b.takenBranch = (i * 7 + 3) % 3 == 0;
        b.pc = 0x7000; // all alias to one PC with changing outcomes
        body_random.push_back(b);
    }
    auto sys2 = makeSystem(body_random, AtomicPolicy::Eager);
    Cycle random = sys2->run(300);
    EXPECT_GT(random, predictable);
    EXPECT_GT(sys2->core(0).stats().counterValue("branchMispredicts"), 0u);
}

TEST(CorePipeline, FenceOrdersAndSlowsMemoryTraffic)
{
    std::vector<MicroOp> with_fence = {load(0x100000), fence(),
                                       load(0x200000)};
    std::vector<MicroOp> no_fence = {load(0x100000), alu(),
                                     load(0x200000)};
    // Use distinct addresses per iteration? LoopStream repeats the same
    // lines, so everything is warm after the first pass; the fence cost
    // is then pure serialisation.
    auto f = makeSystem(with_fence, AtomicPolicy::Eager);
    auto n = makeSystem(no_fence, AtomicPolicy::Eager);
    Cycle cf = f->run(300);
    Cycle cn = n->run(300);
    EXPECT_GT(cf, cn + 300); // at least a few cycles per iteration
}

namespace
{
/** Loads and an atomic whose addresses advance every iteration, so
 *  consecutive atomics never alias and misses stay cold. */
class ColdStream : public InstStream
{
  public:
    MicroOp
    next() override
    {
        switch (idx++ % 5) {
          case 0:
            return load(0x10000000 + (idx / 5) * 0x1000);
          case 1:
            return load(0x20000000 + (idx / 5) * 0x1000);
          case 2:
            return atomicFaa(0x30000000 + (idx / 5) * 0x1000);
          case 3:
            return alu();
          default: {
            MicroOp op = alu();
            op.endOfIteration = true;
            return op;
          }
        }
    }

  private:
    std::uint64_t idx = 0;
};
} // namespace

TEST(CorePipeline, EagerAtomicIssuesBeforeBecomingOldest)
{
    // Cold loads ahead of the atomic: eager must issue while they run.
    SystemParams sp;
    sp.numCores = 1;
    sp.core.atomicPolicy = AtomicPolicy::Eager;
    std::vector<std::unique_ptr<InstStream>> streams;
    streams.push_back(std::make_unique<ColdStream>());
    System sys(sp, std::move(streams));
    sys.run(100);
    EXPECT_GT(sys.meanAverage("olderUnexecutedAtIssue"), 0.5);
}

TEST(CorePipeline, LazyAtomicWaitsForOldestAndSbDrain)
{
    std::vector<MicroOp> body = {load(0x100000), store(0x200000, 1),
                                 atomicFaa(0x300000), alu()};
    auto eager = makeSystem(body, AtomicPolicy::Eager);
    auto lazy = makeSystem(body, AtomicPolicy::Lazy);
    eager->run(100);
    lazy->run(100);
    // Lazy waits much longer between dispatch and issue.
    EXPECT_GT(lazy->meanAverage("atomicDispatchToIssue"),
              eager->meanAverage("atomicDispatchToIssue") + 10);
    // ...but holds the lock for far less time.
    EXPECT_LT(lazy->meanAverage("atomicLockToUnlock"),
              eager->meanAverage("atomicLockToUnlock"));
}

TEST(CorePipeline, AtomicResultFeedsDependents)
{
    // FAA result is consumed by a dependent ALU chain; the run must make
    // progress and the counter must accumulate.
    MicroOp at = atomicFaa(0x300000);
    std::vector<MicroOp> body = {at, alu(1, 1), alu(1, 1)};
    auto sys = makeSystem(body, AtomicPolicy::Eager);
    sys->run(200);
    sys->drain();
    EXPECT_EQ(sys->mem().functional().read64(0x300000),
              sys->core(0).committedAtomics());
}

TEST(CorePipeline, AtomicAfterSameWordStoreWaitsWithoutForwarding)
{
    std::vector<MicroOp> body = {store(0x300000, 5), atomicFaa(0x300000),
                                 alu()};
    auto sys = makeSystem(body, AtomicPolicy::Eager);
    sys->run(50);
    sys->drain();
    // Each iteration: store writes 5, FAA adds 1 -> final value 6.
    EXPECT_EQ(sys->mem().functional().read64(0x300000), 6u);
    EXPECT_EQ(sys->totalCounter("atomicsForwarded"), 0u);
}

TEST(CorePipeline, ForwardingToAtomicsEngagesWhenEnabled)
{
    std::vector<MicroOp> body = {store(0x300000, 5), atomicFaa(0x300000),
                                 alu()};
    body.back().endOfIteration = true;
    SystemParams sp;
    sp.numCores = 1;
    sp.core.atomicPolicy = AtomicPolicy::Eager;
    sp.core.forwardToAtomics = true;
    std::vector<std::unique_ptr<InstStream>> streams;
    {
        std::vector<MicroOp> b = body;
        b.back().endOfIteration = true;
        streams.push_back(std::make_unique<LoopStream>(b));
    }
    System sys(sp, std::move(streams));
    sys.run(50);
    sys.drain();
    EXPECT_GT(sys.totalCounter("atomicsForwarded"), 40u);
    EXPECT_EQ(sys.mem().functional().read64(0x300000), 6u);
}

TEST(CorePipeline, SwapAndCasSemantics)
{
    MicroOp sw;
    sw.cls = OpClass::AtomicRMW;
    sw.aop = AtomicOp::Swap;
    sw.addr = 0x300000;
    sw.value = 123;
    auto sys = makeSystem({sw, alu()}, AtomicPolicy::Eager);
    sys->run(10);
    sys->drain();
    EXPECT_EQ(sys->mem().functional().read64(0x300000), 123u);

    MicroOp cas;
    cas.cls = OpClass::AtomicRMW;
    cas.aop = AtomicOp::CompareSwap;
    cas.addr = 0x400000;
    cas.value = 55;
    auto sys2 = makeSystem({cas, alu()}, AtomicPolicy::Eager);
    sys2->run(10);
    sys2->drain();
    EXPECT_EQ(sys2->mem().functional().read64(0x400000), 55u);

    // A CAS with an injected expectation mismatch writes nothing.
    cas.casExpectMismatch = true;
    cas.addr = 0x500000;
    auto sys3 = makeSystem({cas, alu()}, AtomicPolicy::Eager);
    sys3->run(10);
    sys3->drain();
    EXPECT_EQ(sys3->mem().functional().read64(0x500000), 0u);
}

TEST(CorePipeline, FencedPolicySlowerThanEagerOnIndependentAtomics)
{
    std::vector<MicroOp> body = {load(0x100000), atomicFaa(0x300000),
                                 load(0x200000), alu()};
    auto eager = makeSystem(body, AtomicPolicy::Eager);
    auto fenced = makeSystem(body, AtomicPolicy::Fenced);
    Cycle ce = eager->run(200);
    Cycle cf = fenced->run(200);
    EXPECT_GT(cf, ce);
}

TEST(CorePipeline, DrainEmptiesEverything)
{
    std::vector<MicroOp> body = {load(0x100000), store(0x200000, 1),
                                 atomicFaa(0x300000), alu()};
    auto sys = makeSystem(body, AtomicPolicy::Eager);
    sys->run(20);
    sys->drain();
    EXPECT_TRUE(sys->core(0).drained());
    EXPECT_TRUE(sys->mem().idle());
}

TEST(CorePipeline, CommittedInstructionCountsMatchBody)
{
    std::vector<MicroOp> body = {alu(), alu(), load(0x100000), alu()};
    auto sys = makeSystem(body, AtomicPolicy::Eager);
    sys->run(100);
    sys->drain();
    // Each iteration is 4 instructions; at least the quota committed.
    EXPECT_GE(sys->core(0).committedInstructions(), 400u);
    EXPECT_GE(sys->core(0).committedIterations(), 100u);
}
