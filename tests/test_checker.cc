/**
 * @file
 * Invariant-checker tests: category parsing, checker-clean real runs,
 * and death tests proving that deliberately corrupted protocol state is
 * caught, panics with a message naming the guilty structure, and emits
 * the crash-diagnostics dump.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/checker.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

std::unique_ptr<System>
makeCounterSystem(unsigned cores, unsigned counters,
                  const std::string &check, Cycle interval)
{
    SystemParams sp;
    sp.numCores = cores;
    sp.checkCategories = check;
    sp.checkInterval = interval;
    std::vector<std::unique_ptr<InstStream>> streams;
    for (CoreId c = 0; c < cores; c++) {
        std::vector<MicroOp> body;
        MicroOp ld;
        ld.cls = OpClass::Load;
        ld.addr = addrmap::privateLine(c, (c * 37) % 512);
        body.push_back(ld);
        for (unsigned k = 0; k < counters; k++) {
            MicroOp at;
            at.cls = OpClass::AtomicRMW;
            at.aop = AtomicOp::FetchAdd;
            at.addr = addrmap::sharedAtomicWord((c + k) % counters);
            at.value = 1;
            at.pc = 0x9000 + 4 * k;
            body.push_back(at);
        }
        body.back().endOfIteration = true;
        streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    }
    return std::make_unique<System>(sp, std::move(streams));
}

/** The checker mask is static (process-wide); save/restore per test. */
class CheckerTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved = Checker::mask(); }
    void TearDown() override { Checker::configure(saved); }
    std::uint32_t saved = 0;
};

} // namespace

TEST(CheckCategories, ParseKnownNames)
{
    EXPECT_EQ(parseCheckCategories("swmr"),
              static_cast<std::uint32_t>(CheckCategory::Swmr));
    EXPECT_EQ(parseCheckCategories("swmr,locks"),
              static_cast<std::uint32_t>(CheckCategory::Swmr) |
                  static_cast<std::uint32_t>(CheckCategory::Locks));
    EXPECT_EQ(parseCheckCategories(" Leaks , MESSAGES "),
              static_cast<std::uint32_t>(CheckCategory::Leaks) |
                  static_cast<std::uint32_t>(CheckCategory::Messages));
    EXPECT_EQ(parseCheckCategories("all"), checkCategoryAll);
    EXPECT_EQ(parseCheckCategories("none"), 0u);
    EXPECT_EQ(parseCheckCategories(""), 0u);
}

TEST(CheckCategories, UnknownNameIsFatal)
{
    EXPECT_THROW(parseCheckCategories("bogus"), std::runtime_error);
}

TEST(CheckCategories, NamesRoundTrip)
{
    for (std::uint32_t bit = 1; bit <= checkCategoryAll; bit <<= 1) {
        const char *name =
            checkCategoryName(static_cast<CheckCategory>(bit));
        EXPECT_EQ(parseCheckCategories(name), bit) << name;
    }
}

TEST_F(CheckerTest, CleanRunIsCheckerClean)
{
    auto sys = makeCounterSystem(8, 2, "all", 64);
    EXPECT_NO_THROW(sys->run(20));
    EXPECT_NO_THROW(sys->drain());
    EXPECT_GT(sys->checker().sweepsRun(), 0u);
    // A final sweep on the quiesced system must also pass.
    EXPECT_NO_THROW(sys->checker().sweep(sys->now()));
}

TEST_F(CheckerTest, IntervalControlsSweepCadence)
{
    auto sys = makeCounterSystem(2, 1, "occupancy", 16);
    EXPECT_EQ(sys->checker().interval(), 16u);
    sys->runCycles(200);
    EXPECT_GE(sys->checker().sweepsRun(), 10u);
}

TEST_F(CheckerTest, CorruptedDirectoryOwnerIsCaughtWithDump)
{
    auto sys = makeCounterSystem(4, 1, "all", 1024);
    sys->run(5);
    sys->drain();

    // Corrupt the directory: claim core1 owns a line no cache holds.
    const Addr line = lineAlign(addrmap::sharedDataLine(99));
    sys->mem().directory(0).testSetLine(line, DirState::Modified, 1, 0);

    ::testing::internal::CaptureStderr();
    std::string what;
    try {
        sys->checker().sweep(sys->now());
        FAIL() << "corrupted directory state was not detected";
    } catch (const std::logic_error &e) {
        what = e.what();
    }
    const std::string err = ::testing::internal::GetCapturedStderr();

    // The panic names the guilty structure, line, and core...
    EXPECT_NE(what.find("[check:swmr]"), std::string::npos) << what;
    EXPECT_NE(what.find("core1"), std::string::npos) << what;
    // ...and the crash dump was emitted with the structured snapshot.
    EXPECT_NE(err.find("=== ROWSIM CRASH DUMP BEGIN ==="),
              std::string::npos);
    EXPECT_NE(err.find("=== ROWSIM CRASH DUMP END ==="),
              std::string::npos);
    EXPECT_NE(err.find("\"directories\":"), std::string::npos);
    EXPECT_NE(err.find("\"recentTrace\":"), std::string::npos);
}

TEST_F(CheckerTest, TwoModifiedCopiesAreCaught)
{
    auto sys = makeCounterSystem(4, 1, "swmr", 1024);
    sys->run(5);
    sys->drain();

    const Addr line = lineAlign(addrmap::sharedDataLine(123));
    sys->mem().cache(0).testSetLineState(line, CacheState::Modified,
                                         sys->now());
    sys->mem().cache(1).testSetLineState(line, CacheState::Modified,
                                         sys->now());

    ::testing::internal::CaptureStderr();
    std::string what;
    try {
        sys->checker().sweep(sys->now());
        FAIL() << "double-Modified line was not detected";
    } catch (const std::logic_error &e) {
        what = e.what();
    }
    ::testing::internal::GetCapturedStderr();
    EXPECT_NE(what.find("[check:swmr]"), std::string::npos) << what;
    EXPECT_NE(what.find("single-writer"), std::string::npos) << what;
}

TEST_F(CheckerTest, EventMacroGatesOnCategory)
{
    Checker::configure(
        static_cast<std::uint32_t>(CheckCategory::Locks));
    EXPECT_THROW(
        ROWSIM_CHECK_EVENT(CheckCategory::Locks, false, "forced failure"),
        std::logic_error);
    // Off category: the condition must not even be evaluated.
    Checker::configure(0);
    bool evaluated = false;
    auto probe = [&]() {
        evaluated = true;
        return false;
    };
    EXPECT_NO_THROW(
        ROWSIM_CHECK_EVENT(CheckCategory::Locks, probe(), "gated off"));
    EXPECT_FALSE(evaluated);
}
