/**
 * @file
 * Attribution-profiler tests: category parsing, CPI-stack slot
 * conservation (with and without idle fast-forward), the per-cacheline
 * contention table against a two-core ping-pong with known structure,
 * the RoW decision audit against the predictor's own counters, and the
 * off/on equivalence guarantees (profiling must never perturb the
 * simulated machine, and off-mode stats JSON must not grow new keys).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/experiment.hh"
#include "sim/profile.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

/** A maximally simple ping-pong: every iteration is one fetch-add to
 *  the single shared word, so the lock line and its traffic are known
 *  in closed form. */
WorkloadProfile
pingPongProfile()
{
    WorkloadProfile w;
    w.name = "pingpong";
    w.aluOps = 4;
    w.loadsBefore = 0;
    w.loadsAfter = 0;
    w.storesPerIter = 0;
    w.branches = 0;
    w.atomicProb = 1.0;
    w.sharedAtomicWords = 1;
    w.sharedFraction = 1.0;
    w.numAtomicPCs = 1;
    return w;
}

/** Direct System run with an explicit profile spec; returns cycles. */
Cycle
runProfiled(System &sys, std::uint64_t quota)
{
    Cycle c = sys.run(quota);
    EXPECT_NE(sys.profiler(), nullptr);
    return c;
}

} // namespace

TEST(ProfileCategories, ParseAndReject)
{
    EXPECT_EQ(parseProfileCategories(""), 0u);
    EXPECT_EQ(parseProfileCategories("none"), 0u);
    EXPECT_EQ(parseProfileCategories("all"), profCategoryAll);
    EXPECT_EQ(parseProfileCategories("cpi"),
              static_cast<std::uint32_t>(ProfCategory::Cpi));
    EXPECT_EQ(parseProfileCategories("lines,row"),
              static_cast<std::uint32_t>(ProfCategory::Lines) |
                  static_cast<std::uint32_t>(ProfCategory::Row));
    // "check" audits the cpi stacks, so it pulls them in.
    EXPECT_EQ(parseProfileCategories("check"),
              static_cast<std::uint32_t>(ProfCategory::Check) |
                  static_cast<std::uint32_t>(ProfCategory::Cpi));
    EXPECT_THROW(parseProfileCategories("bogus"), std::runtime_error);
    EXPECT_THROW(parseProfileCategories("cpi,hotloops"),
                 std::runtime_error);
}

TEST(ProfileCpi, SlotConservationWithAndWithoutFastForward)
{
    // Every commit slot of every cycle must land in exactly one bucket:
    // sum(stack) == cycles * commitWidth per core. Fast-forward skips
    // must be credited as explicit idle slots, so the invariant holds
    // under FF=0, FF=1 and FF=check alike. The "check" category also
    // arms the end-of-run audit inside System::run (panics on drift).
    for (const char *ff : {"0", "1", "check"}) {
        ::setenv("ROWSIM_FF", ff, 1);
        SystemParams sp = makeParams(lazyConfig(), 8, 1);
        sp.profileCategories = "check";
        System sys(sp, makeStreams(profileFor("pc"), sp.numCores,
                                   sp.seed));
        const Cycle cycles = runProfiled(sys, 50);
        ::unsetenv("ROWSIM_FF");

        const auto &cpi = sys.profiler()->cpi();
        ASSERT_EQ(cpi.size(), sp.numCores);
        for (unsigned c = 0; c < sp.numCores; c++) {
            std::uint64_t total = 0;
            for (std::uint64_t slots : cpi[c])
                total += slots;
            EXPECT_EQ(total,
                      static_cast<std::uint64_t>(cycles) *
                          sp.core.commitWidth)
                << "core " << c << " under ROWSIM_FF=" << ff;
        }
        // A lazy contended run must attribute some slots to the lazy
        // wait — the bucket the paper's Fig. 6 story is about.
        std::uint64_t lazyWait = 0, retired = 0;
        for (unsigned c = 0; c < sp.numCores; c++) {
            lazyWait += cpi[c][static_cast<unsigned>(
                CpiBucket::AtomicLazyWait)];
            retired += cpi[c][static_cast<unsigned>(CpiBucket::Retired)];
        }
        EXPECT_GT(lazyWait, 0u) << "ROWSIM_FF=" << ff;
        EXPECT_GT(retired, 0u) << "ROWSIM_FF=" << ff;
    }
}

TEST(ProfileLines, PingPongLineTableHasKnownCounts)
{
    SystemParams sp = makeParams(eagerConfig(), 2, 1);
    sp.profileCategories = "lines";
    System sys(sp, makeStreams(pingPongProfile(), sp.numCores, sp.seed));
    runProfiled(sys, 200);
    // run() returns the moment the quota commits; drain the in-flight
    // tail so every acquired lock has released and the books close.
    sys.drain();

    const Addr lockLine = lineAlign(addrmap::sharedAtomicWord(0));
    const auto &lines = sys.profiler()->lines();
    ASSERT_TRUE(lines.count(lockLine))
        << "the shared word's line must be tracked";
    const Profiler::LineProf &p = lines.at(lockLine);

    // Every unlocked atomic acquired the lock exactly once; a forced
    // unlock releases without an unlock stat and the replay re-acquires.
    const std::uint64_t unlocked = sys.totalCounter("atomicsUnlocked");
    const std::uint64_t forced = sys.totalCounter("forcedUnlocks");
    EXPECT_GT(unlocked, 0u);
    EXPECT_EQ(p.acquires, unlocked + forced);

    // Both cores hammer the same line; it must ping-pong between them.
    EXPECT_EQ(p.coresMask, 0b11u);
    EXPECT_GT(p.ownerSwaps, 0u);
    EXPECT_GT(p.holdCycles, 0u);
    EXPECT_GT(p.remoteFills, 0u);

    // Top-K: with K=1 the dump must name exactly this line.
    Profiler::setTopK(1);
    const std::string json = sys.profiler()->toJson();
    Profiler::setTopK(0);
    EXPECT_NE(json.find("\"linesTracked\""), std::string::npos);
    EXPECT_NE(json.find(strprintf("\"line\":\"%#llx\"",
                                  static_cast<unsigned long long>(
                                      lockLine))),
              std::string::npos);
}

TEST(ProfileRow, AuditTotalsMatchPredictorCounters)
{
    SystemParams sp = makeParams(
        rowConfig(ContentionDetector::RWDir,
                  PredictorUpdate::SaturateOnContention),
        8, 1);
    sp.profileCategories = "row";
    System sys(sp, makeStreams(profileFor("pc"), sp.numCores, sp.seed));
    runProfiled(sys, 60);

    std::uint64_t updates = 0, contended = 0;
    for (CoreId c = 0; c < sys.numCores(); c++) {
        updates +=
            sys.core(c).predictor().stats().counterValue("updates");
        contended += sys.core(c).predictor().stats().counterValue(
            "contendedOutcomes");
    }
    ASSERT_GT(updates, 0u);

    // The audit mirrors the predictor's update call site one-to-one:
    // cross-tab total == updates, observed-contended column ==
    // contendedOutcomes.
    const Profiler::RowProf t = sys.profiler()->rowTotals();
    const std::uint64_t cells = t.cell[0][0] + t.cell[0][1] +
                                t.cell[1][0] + t.cell[1][1];
    EXPECT_EQ(cells, updates);
    EXPECT_EQ(t.cell[0][1] + t.cell[1][1], contended);
}

TEST(ProfilePcs, HistogramsAndPercentilesOnlyWhenProfiled)
{
    ::unsetenv("ROWSIM_PROFILE");
    ExpConfig off = eagerConfig();
    ExpConfig on = eagerConfig();
    on.label = "eager+pcs";
    on.profile = "pcs";

    RunResult roff = runExperiment("pc", off, 8, 40, 1, true);
    RunResult ron = runExperiment("pc", on, 8, 40, 1, true);

    // Profiling must not perturb the simulated machine.
    EXPECT_EQ(roff.cycles, ron.cycles);
    EXPECT_EQ(roff.instructions, ron.instructions);
    EXPECT_DOUBLE_EQ(roff.issueToLock, ron.issueToLock);

    // The phase histograms (and thus percentiles) exist only under pcs.
    EXPECT_EQ(roff.issueToLockP99, 0.0);
    EXPECT_GT(ron.issueToLockP99, 0.0);
    EXPECT_LE(ron.issueToLockP50, ron.issueToLockP90);
    EXPECT_LE(ron.issueToLockP90, ron.issueToLockP99);
    EXPECT_EQ(roff.statsJson.find("Hist"), std::string::npos);
    EXPECT_NE(ron.statsJson.find("atomicIssueToLockHist"),
              std::string::npos);
}

TEST(ProfileOffOn, OffModeStatsJsonIsUntouchedAndMaskDoesNotLeak)
{
    ::unsetenv("ROWSIM_PROFILE");
    ExpConfig off = eagerConfig();
    ExpConfig all = eagerConfig();
    all.label = "eager+all";
    all.profile = "all";

    RunResult off1 = runExperiment("pc", off, 8, 40, 1, true);
    RunResult ron = runExperiment("pc", all, 8, 40, 1, true);
    // A profiled run on this thread must not leak its mask into the
    // next unprofiled System (setupProfiling re-applies per run).
    RunResult off2 = runExperiment("pc", off, 8, 40, 1, true);

    EXPECT_EQ(off1.statsJson, off2.statsJson);
    EXPECT_EQ(off1.statsJson.find("\"profile\""), std::string::npos);
    EXPECT_TRUE(off1.profileJson.empty());
    EXPECT_TRUE(off2.profileJson.empty());

    EXPECT_EQ(off1.cycles, ron.cycles);
    EXPECT_NE(ron.statsJson.find("\"profile\""), std::string::npos);
    ASSERT_FALSE(ron.profileJson.empty());
    EXPECT_NE(ron.profileJson.find("\"categories\":"), std::string::npos);
    EXPECT_NE(ron.profileJson.find("\"cpi\":"), std::string::npos);
    EXPECT_NE(ron.profileJson.find("\"row\":"), std::string::npos);
}
