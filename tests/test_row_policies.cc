/**
 * @file
 * End-to-end tests of the RoW mechanism: the predictor learns real
 * contention, detectors mark the right atomics, lazy execution engages,
 * the locality promotion fires, and the headline performance ordering
 * (lazy < eager on contended, eager < lazy on uncontended) holds.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/profiles.hh"

using namespace rowsim;

namespace
{
/** Small quotas keep the suite fast while staying well above noise. */
RunResult
quickRun(const std::string &w, const ExpConfig &cfg, std::uint64_t quota,
         unsigned cores = 16)
{
    return runExperiment(w, cfg, cores, quota);
}
} // namespace

TEST(RowPolicy, ContendedWorkloadPrefersLazy)
{
    RunResult eager = quickRun("pc", eagerConfig(), 60);
    RunResult lazy = quickRun("pc", lazyConfig(), 60);
    EXPECT_LT(lazy.cycles, eager.cycles);
}

TEST(RowPolicy, UncontendedWorkloadPrefersEager)
{
    RunResult eager = quickRun("canneal", eagerConfig(), 80);
    RunResult lazy = quickRun("canneal", lazyConfig(), 80);
    EXPECT_LT(eager.cycles, lazy.cycles);
}

TEST(RowPolicy, RoWTracksTheBetterStaticPolicyOnBothExtremes)
{
    for (const char *w : {"pc", "canneal"}) {
        RunResult eager = quickRun(w, eagerConfig(), 60);
        RunResult lazy = quickRun(w, lazyConfig(), 60);
        RunResult row = quickRun(
            w, rowConfig(ContentionDetector::RWDir,
                         PredictorUpdate::SaturateOnContention), 60);
        Cycle best = std::min(eager.cycles, lazy.cycles);
        Cycle worst = std::max(eager.cycles, lazy.cycles);
        // RoW must land close to the better policy, not the worse one.
        EXPECT_LT(row.cycles, best + (worst - best) / 2) << w;
    }
}

TEST(RowPolicy, PredictorActuallyChangesExecutionMode)
{
    RunResult row = quickRun(
        "pc", rowConfig(ContentionDetector::RWDir,
                        PredictorUpdate::SaturateOnContention), 60);
    // Nearly every pc atomic should end up lazy after warmup.
    EXPECT_GT(row.lazyIssued, row.eagerIssued);

    RunResult row2 = quickRun(
        "canneal", rowConfig(ContentionDetector::RWDir,
                             PredictorUpdate::SaturateOnContention), 80);
    EXPECT_GT(row2.eagerIssued, 50 * row2.lazyIssued + 1);
}

TEST(RowPolicy, DetectorsSeeContentionOnlyWhereItExists)
{
    auto cfg = rowConfig(ContentionDetector::RWDir,
                         PredictorUpdate::SaturateOnContention);
    RunResult hot = quickRun("pc", cfg, 60);
    RunResult cold = quickRun("canneal", cfg, 80);
    ASSERT_GT(hot.atomicsUnlocked, 0u);
    EXPECT_GT(static_cast<double>(hot.detectedContended) /
                  hot.atomicsUnlocked, 0.5);
    EXPECT_LT(static_cast<double>(cold.detectedContended) /
                  cold.atomicsUnlocked, 0.05);
}

TEST(RowPolicy, ReadyWindowCatchesMoreThanExecutionWindow)
{
    // Under lazy execution, lock windows are tiny; EW barely sees
    // contention while RW (address known from operand-ready) does.
    auto ew = rowConfig(ContentionDetector::EW,
                        PredictorUpdate::SaturateOnContention);
    auto rw = rowConfig(ContentionDetector::RW,
                        PredictorUpdate::SaturateOnContention);
    RunResult r_ew = quickRun("tpcc", ew, 40);
    RunResult r_rw = quickRun("tpcc", rw, 40);
    ASSERT_GT(r_ew.atomicsUnlocked, 0u);
    EXPECT_GE(static_cast<double>(r_rw.detectedContended) /
                  r_rw.atomicsUnlocked,
              static_cast<double>(r_ew.detectedContended) /
                  r_ew.atomicsUnlocked);
}

TEST(RowPolicy, OracleContentionMatchesWorkloadStructure)
{
    RunResult hot = quickRun("pc", eagerConfig(), 60);
    RunResult cold = quickRun("canneal", eagerConfig(), 80);
    EXPECT_GT(hot.contendedPct, 60.0);
    EXPECT_LT(cold.contendedPct, 5.0);
}

TEST(RowPolicy, LazyShrinksLockWindow)
{
    RunResult eager = quickRun("pc", eagerConfig(), 60);
    RunResult lazy = quickRun("pc", lazyConfig(), 60);
    EXPECT_LT(lazy.lockToUnlock * 3, eager.lockToUnlock);
    // Lazy also shortens the acquisition itself (fewer competing locks).
    EXPECT_LT(lazy.issueToLock, eager.issueToLock);
}

TEST(RowPolicy, LazyReducesMissLatencyOnContended)
{
    // Fig. 11: eager execution of contended atomics roughly doubles the
    // average L1D miss latency.
    RunResult eager = quickRun("pc", eagerConfig(), 60);
    RunResult lazy = quickRun("pc", lazyConfig(), 60);
    EXPECT_LT(lazy.missLatency, eager.missLatency);
}

TEST(RowPolicy, ForwardingRecoversCqLocality)
{
    // Fig. 13: with forwarding + the locality promotion, RoW matches or
    // beats plain eager on cq; without it, RoW behaves like lazy.
    RunResult eager = quickRun("cq", eagerConfig(), 50);
    RunResult row_nofwd = quickRun(
        "cq", rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown),
        50);
    RunResult row_fwd = quickRun(
        "cq", rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown,
                        true), 50);
    EXPECT_LT(row_fwd.cycles, row_nofwd.cycles);
    EXPECT_LE(row_fwd.cycles, eager.cycles * 11 / 10);
    EXPECT_GT(row_fwd.atomicsForwarded + row_fwd.atomicsPromoted, 0u);
}

TEST(RowPolicy, PromotionOnlyFiresWithForwardingEnabled)
{
    RunResult nofwd = quickRun(
        "cq", rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown),
        40);
    EXPECT_EQ(nofwd.atomicsPromoted, 0u);
    EXPECT_EQ(nofwd.atomicsForwarded, 0u);
}

TEST(RowPolicy, ThresholdExtremesBracketTheDefault)
{
    // Fig. 10: threshold 0 marks every remote fill contended (hurts
    // canneal-like apps); threshold inf degrades to plain RW.
    auto base = rowConfig(ContentionDetector::RWDir,
                          PredictorUpdate::SaturateOnContention);
    auto zero = base;
    zero.latencyThreshold = 0;
    auto inf = base;
    inf.latencyThreshold = 16000;

    RunResult r0 = quickRun("freqmine", zero, 80);
    RunResult r400 = quickRun("freqmine", base, 80);
    RunResult rinf = quickRun("freqmine", inf, 80);
    // freqmine has remote-but-uncontended fills: threshold 0 must force
    // at least as many atomics lazy as the tuned threshold.
    EXPECT_GE(r0.lazyIssued, r400.lazyIssued);
    EXPECT_LE(rinf.detectedContended, r400.detectedContended);
}

TEST(RowPolicy, PredictionAccuracyIsMeaningful)
{
    RunResult r = quickRun(
        "pc", rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown),
        60);
    // pc is ~uniformly contended: the predictor should be nearly always
    // right once trained.
    EXPECT_GT(r.predAccuracy, 80.0);
}

TEST(RowPolicy, Fig9ConfigSetIsComplete)
{
    auto cfgs = fig9Configs();
    ASSERT_EQ(cfgs.size(), 8u);
    EXPECT_EQ(cfgs[0].label, "eager");
    EXPECT_EQ(cfgs[1].label, "lazy");
    EXPECT_EQ(cfgs[2].label, "EW_U/D");
    EXPECT_EQ(cfgs[7].label, "RW+Dir_Sat");
}

TEST(RowPolicy, HeadlineFig1OrderingHolds)
{
    // Spot-check the extremes of Fig. 1 at reduced scale: canneal's lazy
    // penalty and pc's eager penalty both exceed 20%.
    RunResult c_e = quickRun("canneal", eagerConfig(), 80);
    RunResult c_l = quickRun("canneal", lazyConfig(), 80);
    RunResult p_e = quickRun("pc", eagerConfig(), 60);
    RunResult p_l = quickRun("pc", lazyConfig(), 60);
    EXPECT_GT(static_cast<double>(c_l.cycles) / c_e.cycles, 1.2);
    EXPECT_GT(static_cast<double>(p_e.cycles) / p_l.cycles, 1.2);
}
