/**
 * @file
 * Unit tests for the set-associative tag array.
 */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"

using namespace rowsim;

namespace
{
Addr
lineAt(unsigned set, unsigned tag_mult, unsigned sets)
{
    return (static_cast<Addr>(tag_mult) * sets + set) * lineBytes;
}
} // namespace

TEST(CacheArray, MissOnEmpty)
{
    CacheArray c(16, 4);
    EXPECT_EQ(c.lookup(0x1000, 1), nullptr);
    EXPECT_EQ(c.peek(0x1000), nullptr);
}

TEST(CacheArray, FillThenHit)
{
    CacheArray c(16, 4);
    auto *way = c.victim(0x1000, nullptr, 1);
    ASSERT_NE(way, nullptr);
    c.fill(way, 0x1000, CacheState::Shared, 1);
    auto *hit = c.lookup(0x1003, 2); // same line, different offset
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->tag, lineAlign(0x1000));
    EXPECT_EQ(hit->state, CacheState::Shared);
}

TEST(CacheArray, VictimPrefersInvalidWays)
{
    CacheArray c(4, 2);
    auto *w0 = c.victim(lineAt(0, 0, 4), nullptr, 1);
    c.fill(w0, lineAt(0, 0, 4), CacheState::Modified, 1);
    auto *w1 = c.victim(lineAt(0, 1, 4), nullptr, 2);
    EXPECT_FALSE(w1->valid()); // second way still free
}

TEST(CacheArray, LruEviction)
{
    CacheArray c(4, 2);
    c.fill(c.victim(lineAt(0, 0, 4), nullptr, 1), lineAt(0, 0, 4),
           CacheState::Shared, 1);
    c.fill(c.victim(lineAt(0, 1, 4), nullptr, 2), lineAt(0, 1, 4),
           CacheState::Shared, 2);
    // Touch line 0 so line 1 becomes LRU.
    c.lookup(lineAt(0, 0, 4), 3);
    auto *victim = c.victim(lineAt(0, 2, 4), nullptr, 4);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->tag, lineAt(0, 1, 4));
}

TEST(CacheArray, PinnedLinesNeverVictims)
{
    CacheArray c(4, 2);
    Addr pinned_line = lineAt(0, 0, 4);
    c.fill(c.victim(pinned_line, nullptr, 1), pinned_line,
           CacheState::Modified, 1);
    c.fill(c.victim(lineAt(0, 1, 4), nullptr, 2), lineAt(0, 1, 4),
           CacheState::Shared, 2);
    // Make the pinned line LRU.
    c.lookup(lineAt(0, 1, 4), 3);
    auto pinned = [pinned_line](Addr t) { return t == pinned_line; };
    auto *victim = c.victim(lineAt(0, 2, 4), pinned, 4);
    ASSERT_NE(victim, nullptr);
    EXPECT_NE(victim->tag, pinned_line);
}

TEST(CacheArray, AllWaysPinnedReturnsNull)
{
    CacheArray c(4, 2);
    c.fill(c.victim(lineAt(1, 0, 4), nullptr, 1), lineAt(1, 0, 4),
           CacheState::Modified, 1);
    c.fill(c.victim(lineAt(1, 1, 4), nullptr, 2), lineAt(1, 1, 4),
           CacheState::Modified, 2);
    auto pinned = [](Addr) { return true; };
    EXPECT_EQ(c.victim(lineAt(1, 2, 4), pinned, 3), nullptr);
}

TEST(CacheArray, InvalidateRemovesLine)
{
    CacheArray c(16, 4);
    c.fill(c.victim(0x2000, nullptr, 1), 0x2000, CacheState::Modified, 1);
    EXPECT_TRUE(c.invalidate(0x2000));
    EXPECT_EQ(c.peek(0x2000), nullptr);
    EXPECT_FALSE(c.invalidate(0x2000)); // already gone
}

TEST(CacheArray, SetIndexUsesLineNumber)
{
    CacheArray c(16, 4);
    EXPECT_EQ(c.setIndex(0), 0u);
    EXPECT_EQ(c.setIndex(lineBytes), 1u);
    EXPECT_EQ(c.setIndex(16 * lineBytes), 0u); // wraps at numSets
    EXPECT_EQ(c.setIndex(17 * lineBytes + 5), 1u);
}

TEST(CacheArray, DifferentSetsDoNotConflict)
{
    CacheArray c(4, 1); // direct-mapped, 4 sets
    for (unsigned s = 0; s < 4; s++) {
        Addr a = lineAt(s, 0, 4);
        c.fill(c.victim(a, nullptr, s), a, CacheState::Shared, s);
    }
    for (unsigned s = 0; s < 4; s++)
        EXPECT_NE(c.peek(lineAt(s, 0, 4)), nullptr);
}

TEST(CacheArray, RejectsNonPowerOfTwoSets)
{
    EXPECT_THROW(CacheArray(3, 2), std::logic_error);
    EXPECT_THROW(CacheArray(4, 0), std::logic_error);
}

TEST(CacheArray, PeekDoesNotPerturbLru)
{
    CacheArray c(4, 2);
    c.fill(c.victim(lineAt(0, 0, 4), nullptr, 1), lineAt(0, 0, 4),
           CacheState::Shared, 1);
    c.fill(c.victim(lineAt(0, 1, 4), nullptr, 2), lineAt(0, 1, 4),
           CacheState::Shared, 2);
    // Peek at line 0 (older); LRU order must be unchanged, so line 0 is
    // still the victim.
    c.peek(lineAt(0, 0, 4));
    auto *victim = c.victim(lineAt(0, 2, 4), nullptr, 3);
    EXPECT_EQ(victim->tag, lineAt(0, 0, 4));
}
