/**
 * @file
 * Metric time-series engine tests: the online statistics must match
 * closed forms (Welford mean/variance, lag-1 autocorrelation, Student-t
 * quantiles, batch-means CIs with pairwise collapse), the spec parsers
 * must accept the documented grammar and reject everything else, the
 * "timeseries" stats key must appear exactly when the engine is on
 * (byte-identity with every knob off), ROWSIM_CONVERGE must stop a run
 * early at a deterministic interval boundary — invariant across
 * fast-forward modes — and the series must survive sweeps (1-vs-8
 * threads, thread-vs-process) and a mid-interval save/restore
 * bit-identically.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/timeseries.hh"
#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/snapshot.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

struct ScopedEnv
{
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char *name_;
};

std::string
statsJsonOf(System &sys)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *mem = open_memstream(&buf, &len);
    EXPECT_NE(mem, nullptr);
    sys.dumpStatsJson(mem);
    std::fclose(mem);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

std::unique_ptr<System>
makeSystem(const std::string &workload, const ExpConfig &cfg,
           unsigned cores, std::uint64_t seed)
{
    return std::make_unique<System>(
        makeParams(cfg, cores, seed),
        makeStreams(profileFor(workload), cores, seed));
}

} // namespace

// ---------------------------------------------------------------------
// MetricSeries statistics against closed forms
// ---------------------------------------------------------------------

TEST(MetricSeries, WelfordMatchesClosedForm)
{
    const double xs[] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
    MetricSeries m;
    double sum = 0;
    for (unsigned i = 0; i < 10; ++i) {
        m.add(i * 100, xs[i]);
        sum += xs[i];
    }
    const double mean = sum / 10.0;
    double ss = 0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    EXPECT_EQ(m.count(), 10u);
    EXPECT_NEAR(m.mean(), mean, 1e-12);
    EXPECT_NEAR(m.variance(), ss / 9.0, 1e-12);
    EXPECT_NEAR(m.stddev(), std::sqrt(ss / 9.0), 1e-12);
}

TEST(MetricSeries, Lag1MatchesClosedFormAndClamps)
{
    // Alternating series: strongly negative lag-1 autocorrelation.
    MetricSeries alt;
    for (unsigned i = 0; i < 100; ++i)
        alt.add(i, i % 2 ? 1.0 : -1.0);
    EXPECT_NEAR(alt.lag1(), -1.0, 0.05);

    // Monotone ramp: strongly positive.
    MetricSeries ramp;
    for (unsigned i = 0; i < 100; ++i)
        ramp.add(i, static_cast<double>(i));
    EXPECT_GT(ramp.lag1(), 0.9);
    EXPECT_LE(ramp.lag1(), 1.0);

    // Degenerate cases pin to 0: short series and zero variance.
    MetricSeries two;
    two.add(0, 1);
    two.add(1, 2);
    EXPECT_EQ(two.lag1(), 0.0);
    MetricSeries flat;
    for (unsigned i = 0; i < 50; ++i)
        flat.add(i, 7.0);
    EXPECT_EQ(flat.lag1(), 0.0);
}

TEST(TimeSeries, TQuantileMatchesTables)
{
    // Standard two-sided 95% table values t_{df}(0.975).
    EXPECT_NEAR(tQuantile(0.975, 1), 12.706, 0.01);
    EXPECT_NEAR(tQuantile(0.975, 2), 4.303, 0.005);
    EXPECT_NEAR(tQuantile(0.975, 4), 2.776, 0.02);
    EXPECT_NEAR(tQuantile(0.975, 7), 2.365, 0.01);
    EXPECT_NEAR(tQuantile(0.975, 30), 2.042, 0.005);
    EXPECT_NEAR(tQuantile(0.975, 1000), 1.962, 0.005);
    // 99% level.
    EXPECT_NEAR(tQuantile(0.995, 7), 3.499, 0.03);
    EXPECT_NEAR(tQuantile(0.995, 63), 2.656, 0.01);
}

TEST(MetricSeries, BatchMeansCiClosedForm)
{
    // 16 samples, batch size 1 -> 16 batch means = the samples.
    MetricSeries m;
    double sum = 0;
    for (unsigned i = 0; i < 16; ++i) {
        const double v = 10.0 + (i % 4); // 10,11,12,13 repeating
        m.add(i, v);
        sum += v;
    }
    ASSERT_EQ(m.batchCount(), 16u);
    ASSERT_EQ(m.batchSize(), 1u);
    const double mean = sum / 16.0;
    double ss = 0;
    for (unsigned i = 0; i < 16; ++i) {
        const double v = 10.0 + (i % 4);
        ss += (v - mean) * (v - mean);
    }
    const double s2 = ss / 15.0;
    const double expectHw =
        tQuantile(0.975, 15) * std::sqrt(s2 / 16.0);

    const MetricSeries::Ci ci = m.ci(0.95);
    ASSERT_TRUE(ci.valid);
    EXPECT_NEAR(ci.halfwidth, expectHw, 1e-9);
    EXPECT_NEAR(ci.relHalfwidth, expectHw / mean, 1e-9);
    EXPECT_NEAR(ci.lo, mean - expectHw, 1e-9);
    EXPECT_NEAR(ci.hi, mean + expectHw, 1e-9);
}

TEST(MetricSeries, CiInvalidUntilMinBatchesAndInfiniteRelAtZeroMean)
{
    MetricSeries m;
    for (unsigned i = 0; i < MetricSeries::kMinBatches - 1; ++i)
        m.add(i, 1.0);
    EXPECT_FALSE(m.ci(0.95).valid);
    m.add(99, 1.0);
    EXPECT_TRUE(m.ci(0.95).valid);

    // Mean zero: half-width finite, relative half-width infinite.
    MetricSeries z;
    for (unsigned i = 0; i < 16; ++i)
        z.add(i, i % 2 ? 1.0 : -1.0);
    const MetricSeries::Ci ci = z.ci(0.95);
    ASSERT_TRUE(ci.valid);
    EXPECT_TRUE(std::isinf(ci.relHalfwidth));
}

TEST(MetricSeries, BatchCollapseKeepsTotalsAndBoundsMemory)
{
    MetricSeries m;
    double sum = 0;
    const unsigned n = 10000;
    for (unsigned i = 0; i < n; ++i) {
        const double v = std::sin(0.1 * i) + 2.0;
        m.add(i, v);
        sum += v;
    }
    EXPECT_EQ(m.count(), n);
    EXPECT_NEAR(m.mean(), sum / n, 1e-9);
    // The collapse keeps the completed-batch count within
    // (kMaxBatches/2, kMaxBatches] while batchSize doubles.
    EXPECT_LE(m.batchCount(), MetricSeries::kMaxBatches);
    EXPECT_GT(m.batchCount(), MetricSeries::kMaxBatches / 2);
    EXPECT_GE(m.batchSize(), 2u);
    // Completed batches partition a prefix of the samples exactly.
    EXPECT_LE(m.batchCount() * m.batchSize(), n);
    const MetricSeries::Ci ci = m.ci(0.95);
    ASSERT_TRUE(ci.valid);
    EXPECT_GT(ci.halfwidth, 0.0);
    EXPECT_LT(ci.relHalfwidth, 1.0);
}

TEST(MetricSeries, WindowRingKeepsNewestPoints)
{
    MetricSeries m(4);
    for (unsigned i = 0; i < 10; ++i)
        m.add(1000 + i, static_cast<double>(i));
    const std::vector<Cycle> cyc = m.windowCycles();
    const std::vector<double> val = m.windowValues();
    ASSERT_EQ(cyc.size(), 4u);
    ASSERT_EQ(val.size(), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(cyc[i], 1006u + i);
        EXPECT_EQ(val[i], 6.0 + i);
    }
}

// ---------------------------------------------------------------------
// Spec parsers
// ---------------------------------------------------------------------

TEST(TimeSeries, ParseConvergeSpec)
{
    const ConvergeSpec none = parseConvergeSpec("X", "");
    EXPECT_FALSE(none.active);

    const ConvergeSpec basic =
        parseConvergeSpec("X", "instructions:0.02");
    EXPECT_TRUE(basic.active);
    EXPECT_EQ(basic.metric, "instructions");
    EXPECT_DOUBLE_EQ(basic.relHalfwidth, 0.02);
    EXPECT_DOUBLE_EQ(basic.confidence, 0.95);

    const ConvergeSpec full = parseConvergeSpec("X", "atomics:0.1:0.99");
    EXPECT_DOUBLE_EQ(full.confidence, 0.99);

    EXPECT_THROW(parseConvergeSpec("X", "nocolon"), std::runtime_error);
    EXPECT_THROW(parseConvergeSpec("X", ":0.1"), std::runtime_error);
    EXPECT_THROW(parseConvergeSpec("X", "m:0"), std::runtime_error);
    EXPECT_THROW(parseConvergeSpec("X", "m:-0.5"), std::runtime_error);
    EXPECT_THROW(parseConvergeSpec("X", "m:0.1:1.5"),
                 std::runtime_error);
    EXPECT_THROW(parseConvergeSpec("X", "m:junk"), std::runtime_error);
}

TEST(TimeSeries, ParseOnOffSpec)
{
    for (const char *on : {"on", "1", "yes", "true"})
        EXPECT_TRUE(parseOnOffSpec("X", on)) << on;
    for (const char *off : {"off", "0", "no", "false"})
        EXPECT_FALSE(parseOnOffSpec("X", off)) << off;
    EXPECT_THROW(parseOnOffSpec("X", "maybe"), std::runtime_error);
}

// ---------------------------------------------------------------------
// System integration
// ---------------------------------------------------------------------

TEST(TimeSeries, OffByDefaultAndByteIdentical)
{
    // No knob set: the stats tree must not contain the key at all, and
    // an explicitly-off run must be byte-identical to an unset one.
    RunResult plain = runExperiment("pc", eagerConfig(), 8, 40, 1, true);
    EXPECT_EQ(plain.statsJson.find("\"timeseries\""), std::string::npos);
    EXPECT_TRUE(plain.tsJson.empty());
    EXPECT_EQ(plain.toJson().find("timeseries"), std::string::npos);
    EXPECT_EQ(plain.toJson().find("converge"), std::string::npos);

    ExpConfig off = eagerConfig();
    off.timeseries = "off";
    RunResult offRun = runExperiment("pc", off, 8, 40, 1, true);
    EXPECT_EQ(offRun.statsJson, plain.statsJson);
}

TEST(TimeSeries, EngineSamplesEveryIntervalIntoTheStatsTree)
{
    ScopedEnv interval("ROWSIM_STATS_INTERVAL", "1024");
    ExpConfig cfg = eagerConfig();
    cfg.timeseries = "on";
    RunResult r = runExperiment("pc", cfg, 8, 60, 1, true);
    EXPECT_NE(r.statsJson.find("\"timeseries\""), std::string::npos);
    ASSERT_FALSE(r.tsJson.empty());
    // One sample per full interval.
    EXPECT_NE(r.tsJson.find("\"instructions\""), std::string::npos);
    EXPECT_NE(r.tsJson.find(strprintf("\"count\": %llu",
                                      static_cast<unsigned long long>(
                                          r.cycles / 1024))),
              std::string::npos);
    // Without a converge spec there is no converge object anywhere.
    EXPECT_EQ(r.tsJson.find("\"converge\""), std::string::npos);
}

TEST(TimeSeries, DefaultPeriodAppliesWhenIntervalUnset)
{
    ExpConfig cfg = eagerConfig();
    cfg.timeseries = "on";
    RunResult r = runExperiment("pc", cfg, 8, 200, 1, true);
    ASSERT_FALSE(r.tsJson.empty());
    EXPECT_NE(r.tsJson.find("\"period\": 8192"), std::string::npos);
}

TEST(TimeSeries, UnknownConvergeMetricIsFatalNamingTheValidSet)
{
    ExpConfig cfg = eagerConfig();
    cfg.converge = "nosuchmetric:0.1";
    try {
        runExperiment("pc", cfg, 4, 20, 1, false);
        ADD_FAILURE() << "expected a fatal error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("instructions"),
                  std::string::npos);
    }
}

TEST(TimeSeries, ConvergeStopsEarlyAtAnIntervalBoundary)
{
    ScopedEnv interval("ROWSIM_STATS_INTERVAL", "1024");
    ExpConfig plain = eagerConfig();
    RunResult unbounded =
        runExperiment("pc", plain, 8, 4000, 1, false);

    ExpConfig conv = eagerConfig();
    conv.converge = "instructions:0.2";
    RunResult bounded = runExperiment("pc", conv, 8, 4000, 1, false);

    ASSERT_TRUE(bounded.converged);
    EXPECT_EQ(bounded.convergeMetric, "instructions");
    EXPECT_DOUBLE_EQ(bounded.convergeTarget, 0.2);
    EXPECT_LE(bounded.convergeAchieved, 0.2);
    EXPECT_LT(bounded.cycles, unbounded.cycles)
        << "the CI bound should stop the run well before quota";
    EXPECT_EQ(bounded.cycles % 1024, 0u)
        << "the stop must land exactly on a sampling boundary";
    EXPECT_NE(bounded.toJson().find("\"converge\""), std::string::npos);

    // Determinism: the stop cycle is a pure function of the sampled
    // series, so a rerun reproduces it exactly.
    RunResult again = runExperiment("pc", conv, 8, 4000, 1, false);
    EXPECT_EQ(again.cycles, bounded.cycles);
}

TEST(TimeSeries, ConvergeStopCycleInvariantAcrossFastForwardModes)
{
    ScopedEnv interval("ROWSIM_STATS_INTERVAL", "1024");
    ExpConfig conv = lazyConfig();
    conv.converge = "instructions:0.2";

    RunResult byMode[3];
    const char *modes[] = {"0", "1", "check"};
    for (unsigned i = 0; i < 3; ++i) {
        ScopedEnv ff("ROWSIM_FF", modes[i]);
        byMode[i] = runExperiment("pc", conv, 8, 4000, 1, true);
    }
    ASSERT_TRUE(byMode[0].converged);
    for (unsigned i = 1; i < 3; ++i) {
        EXPECT_EQ(byMode[i].cycles, byMode[0].cycles) << modes[i];
        EXPECT_EQ(byMode[i].statsJson, byMode[0].statsJson) << modes[i];
    }
}

TEST(TimeSeries, QuotaRemainsUpperBoundWhenCiNeverTightens)
{
    ScopedEnv interval("ROWSIM_STATS_INTERVAL", "1024");
    ExpConfig strict = eagerConfig();
    strict.converge = "instructions:0.000001";
    RunResult r = runExperiment("pc", strict, 8, 60, 1, false);
    EXPECT_FALSE(r.converged);
    EXPECT_GT(r.convergeAchieved, 0.000001);

    ExpConfig plain = eagerConfig();
    RunResult free = runExperiment("pc", plain, 8, 60, 1, false);
    EXPECT_EQ(r.cycles, free.cycles)
        << "an unmet bound must not change the quota-limited result";
}

// ---------------------------------------------------------------------
// Sweep determinism and snapshot round-trip
// ---------------------------------------------------------------------

TEST(TimeSeries, SweepDeterministicAcrossThreadCountsAndIsolation)
{
    ScopedEnv interval("ROWSIM_STATS_INTERVAL", "1024");
    std::vector<SweepJob> jobs;
    for (const char *w : {"pc", "canneal", "cq", "tatp"}) {
        SweepJob j;
        j.workload = w;
        j.cfg = eagerConfig();
        j.cfg.timeseries = "on";
        if (std::string(w) == "cq")
            j.cfg.converge = "instructions:0.25";
        j.numCores = 8;
        j.quota = 40;
        j.captureStatsJson = true;
        jobs.push_back(std::move(j));
    }

    std::vector<RunResult> serial = SweepEngine(1).run(jobs);
    std::vector<RunResult> parallel = SweepEngine(8).run(jobs);
    SweepOptions iso;
    iso.threads = 4;
    iso.isolation = SweepIsolation::Process;
    std::vector<RunResult> process = SweepEngine(iso).run(jobs);

    ASSERT_EQ(serial.size(), jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        ASSERT_TRUE(serial[k].ok()) << k;
        EXPECT_FALSE(serial[k].tsJson.empty()) << k;
        EXPECT_EQ(serial[k].statsJson, parallel[k].statsJson) << k;
        EXPECT_EQ(serial[k].tsJson, parallel[k].tsJson) << k;
        EXPECT_EQ(serial[k].statsJson, process[k].statsJson) << k;
        EXPECT_EQ(serial[k].tsJson, process[k].tsJson) << k;
        EXPECT_EQ(serial[k].converged, process[k].converged) << k;
    }
}

TEST(TimeSeries, SaveRestoreMidIntervalResumesBitIdentically)
{
    ScopedEnv interval("ROWSIM_STATS_INTERVAL", "1024");
    ExpConfig cfg = lazyConfig();
    cfg.timeseries = "on";
    const unsigned cores = 4;
    const std::uint64_t seed = 3, quota = 200, warm = 50;

    auto cold = makeSystem("cq", cfg, cores, seed);
    cold->run(quota);
    const std::string cold_stats = statsJsonOf(*cold);
    ASSERT_NE(cold_stats.find("\"timeseries\""), std::string::npos);

    // The warm stop lands wherever iteration `warm` commits — almost
    // surely mid-interval, so the in-progress batch, the Welford state
    // and the ring must all round-trip through the snapshot.
    auto warm_sys = makeSystem("cq", cfg, cores, seed);
    warm_sys->runWarmup(quota, warm);
    Ser s;
    warm_sys->save(s);
    warm_sys.reset();

    auto resumed = makeSystem("cq", cfg, cores, seed);
    Deser d(s.bytes());
    resumed->restore(d);
    resumed->run(quota);
    EXPECT_EQ(statsJsonOf(*resumed), cold_stats);
}

TEST(TimeSeries, RestoreRejectsEngineMismatch)
{
    // Pin the sampling period so both Systems agree at the
    // interval-stats layer and the refusal comes from the engine check.
    ScopedEnv interval("ROWSIM_STATS_INTERVAL", "1024");
    ExpConfig on = eagerConfig();
    on.timeseries = "on";
    auto src = makeSystem("pc", on, 4, 1);
    src->runWarmup(100, 20);
    Ser s;
    src->save(s);

    // Same config but engine off: the stats pass must refuse by name
    // instead of misinterpreting the payload.
    auto dst = makeSystem("pc", eagerConfig(), 4, 1);
    Deser d(s.bytes());
    try {
        dst->restore(d);
        ADD_FAILURE() << "expected a SnapshotError";
    } catch (const SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("time-series"),
                  std::string::npos);
    }
}

TEST(TimeSeries, EngineStateSurvivesSerRoundTripExactly)
{
    ConvergeSpec conv;
    conv.active = true;
    conv.metric = "m0";
    conv.relHalfwidth = 0.1;
    TimeSeriesEngine a(64, 8, conv);
    a.addMetric("m0");
    a.addMetric("m1");
    std::vector<double> vals(2);
    for (unsigned i = 1; i <= 150; ++i) {
        vals[0] = 5.0 + std::sin(0.3 * i);
        vals[1] = 100.0 * i;
        a.observe(i * 64, vals);
    }
    Ser s;
    a.save(s);

    TimeSeriesEngine b(64, 8, conv);
    b.addMetric("m0");
    b.addMetric("m1");
    Deser d(s.bytes());
    b.restore(d);
    d.expectEnd();
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.converged(), b.converged());
    EXPECT_EQ(a.convergedAtCycle(), b.convergedAtCycle());
}
