/**
 * @file
 * Randomised protocol stress: cores issue random mixes of loads, stores
 * and atomics over a small shared region (maximising transient-state
 * collisions), across several seeds and policies. Property checks:
 *
 *  1. liveness — the run completes and drains without tripping the
 *     deadlock watchdog;
 *  2. single-writer — after draining, every line has at most one core
 *     holding it Modified;
 *  3. value integrity — per-word FAA counters account for every
 *     committed increment.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

constexpr unsigned kSharedLines = 16;
constexpr unsigned kCounterWords = 4;

/** Random mix of loads / stores / FAAs over a tiny hot region. */
class ChaosStream : public InstStream
{
  public:
    ChaosStream(CoreId tid, std::uint64_t seed)
        : tid_(tid), rng_(seed * 977 + tid * 131 + 1)
    {
    }

    MicroOp
    next() override
    {
        MicroOp op;
        const double dice = rng_.uniform();
        if (dice < 0.35) {
            op.cls = OpClass::Load;
            op.addr = addrmap::sharedDataLine(rng_.below(kSharedLines));
        } else if (dice < 0.6) {
            op.cls = OpClass::Store;
            op.addr = addrmap::sharedDataLine(rng_.below(kSharedLines)) +
                      8 * rng_.below(4);
            op.value = rng_.next();
        } else if (dice < 0.8) {
            op.cls = OpClass::AtomicRMW;
            op.aop = AtomicOp::FetchAdd;
            op.addr = addrmap::sharedAtomicWord(rng_.below(kCounterWords));
            op.value = 1;
            op.pc = 0x9000 + 4 * (op.addr & 0xff);
        } else if (dice < 0.9) {
            op.cls = OpClass::IntAlu;
        } else {
            op.cls = OpClass::Load;
            op.addr = addrmap::privateLine(tid_, rng_.below(256));
        }
        op.endOfIteration = rng_.chance(0.2);
        return op;
    }

  private:
    CoreId tid_;
    Rng rng_;
};

struct StressCase
{
    std::uint64_t seed;
    AtomicPolicy policy;
    bool forwarding;
};

std::string
caseName(const ::testing::TestParamInfo<StressCase> &info)
{
    const char *p = info.param.policy == AtomicPolicy::Eager   ? "eager"
                    : info.param.policy == AtomicPolicy::Lazy  ? "lazy"
                    : info.param.policy == AtomicPolicy::RoW   ? "row"
                                                               : "fenced";
    return std::string(p) + (info.param.forwarding ? "_fwd" : "") +
           "_seed" + std::to_string(info.param.seed);
}

} // namespace

class ProtocolStress : public ::testing::TestWithParam<StressCase>
{
};

TEST_P(ProtocolStress, InvariantsHoldUnderChaos)
{
    const StressCase &c = GetParam();
    constexpr unsigned cores = 8;

    SystemParams sp;
    sp.numCores = cores;
    sp.core.atomicPolicy = c.policy;
    sp.core.forwardToAtomics = c.forwarding;

    std::vector<std::unique_ptr<InstStream>> streams;
    for (CoreId i = 0; i < cores; i++)
        streams.push_back(std::make_unique<ChaosStream>(i, c.seed));
    System sys(sp, std::move(streams));

    // 1. Liveness.
    ASSERT_NO_THROW(sys.run(60));
    ASSERT_NO_THROW(sys.drain());

    // 2. Single-writer: at most one Modified holder per line.
    for (unsigned l = 0; l < kSharedLines; l++) {
        const Addr line = addrmap::sharedDataLine(l);
        int owners = 0;
        for (CoreId i = 0; i < cores; i++)
            owners += sys.mem().cache(i).lineState(line) ==
                      CacheState::Modified;
        EXPECT_LE(owners, 1) << "line " << l;
    }
    for (unsigned w = 0; w < kCounterWords; w++) {
        const Addr line = addrmap::sharedAtomicWord(w);
        int owners = 0;
        for (CoreId i = 0; i < cores; i++)
            owners += sys.mem().cache(i).lineState(line) ==
                      CacheState::Modified;
        EXPECT_LE(owners, 1) << "counter " << w;
    }

    // 3. Value integrity: committed FAAs == sum of the counters.
    std::uint64_t committed = 0;
    for (CoreId i = 0; i < cores; i++)
        committed += sys.core(i).committedAtomics();
    std::uint64_t sum = 0;
    for (unsigned w = 0; w < kCounterWords; w++)
        sum += sys.mem().functional().read64(addrmap::sharedAtomicWord(w));
    EXPECT_EQ(sum, committed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProtocolStress,
    ::testing::Values(
        StressCase{1, AtomicPolicy::Eager, false},
        StressCase{2, AtomicPolicy::Eager, true},
        StressCase{3, AtomicPolicy::Lazy, false},
        StressCase{4, AtomicPolicy::RoW, false},
        StressCase{5, AtomicPolicy::RoW, true},
        StressCase{6, AtomicPolicy::Fenced, false},
        StressCase{7, AtomicPolicy::Eager, false},
        StressCase{8, AtomicPolicy::RoW, true},
        StressCase{9, AtomicPolicy::Lazy, false},
        StressCase{10, AtomicPolicy::Eager, true}),
    caseName);
