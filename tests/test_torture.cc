/**
 * @file
 * Multi-seed protocol torture: every run turns on ALL invariant checkers
 * at a tight sweep interval AND all fault categories (random message
 * delays, stalled banks, forced evictions, delayed Unblocks), then
 * asserts the run is checker-clean, quiesces, and that final memory
 * accounts for every committed atomic. Seeds vary the fault schedule,
 * core count, workload shape, and atomic policy, so each instantiation
 * stresses a different interleaving of the protocol's rare windows.
 *
 * Reproduction: every parameter is derived from the seed printed in the
 * test name, and the injector is seeded deterministically, so a failing
 * seed replays cycle-for-cycle (see README "Self-checking & fault
 * injection").
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

struct TortureConfig
{
    unsigned seed = 0;
    unsigned cores = 0;
    unsigned counters = 0;
    AtomicPolicy policy = AtomicPolicy::Eager;
    bool forwarding = false;
    bool storeBefore = false;
    unsigned faultRate = 0;
};

TortureConfig
configFor(unsigned seed)
{
    TortureConfig tc;
    tc.seed = seed;
    tc.cores = 4 + seed % 5;       // 4..8 cores
    tc.counters = 1 + seed % 3;    // 1..3 hot counters
    tc.policy = (seed % 2) ? AtomicPolicy::RoW : AtomicPolicy::Eager;
    tc.forwarding = (seed % 4) == 1;
    tc.storeBefore = (seed % 2) == 0;
    tc.faultRate = 200 + 100 * (seed % 4);
    return tc;
}

std::unique_ptr<System>
makeTortureSystem(const TortureConfig &tc)
{
    SystemParams sp;
    sp.numCores = tc.cores;
    sp.seed = tc.seed + 1;
    sp.core.atomicPolicy = tc.policy;
    sp.core.forwardToAtomics = tc.forwarding;
    sp.checkCategories = "all";
    sp.checkInterval = 128 + tc.seed;
    sp.faultCategories = "all";
    sp.faultSeed = 1000 + tc.seed;
    sp.faultRate = tc.faultRate;

    std::vector<std::unique_ptr<InstStream>> streams;
    for (CoreId c = 0; c < tc.cores; c++) {
        std::vector<MicroOp> body;
        MicroOp ld;
        ld.cls = OpClass::Load;
        ld.addr = addrmap::privateLine(c, (c * 37 + tc.seed) % 512);
        body.push_back(ld);
        MicroOp alu;
        alu.cls = OpClass::IntAlu;
        body.push_back(alu);
        for (unsigned k = 0; k < tc.counters; k++) {
            Addr target =
                addrmap::sharedAtomicWord((c + k) % tc.counters);
            if (tc.storeBefore) {
                MicroOp st;
                st.cls = OpClass::Store;
                st.addr = target + 8;
                st.value = c;
                body.push_back(st);
            }
            MicroOp at;
            at.cls = OpClass::AtomicRMW;
            at.aop = AtomicOp::FetchAdd;
            at.addr = target;
            at.value = 1;
            at.pc = 0x9000 + 4 * k;
            body.push_back(at);
        }
        body.back().endOfIteration = true;
        streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    }
    return std::make_unique<System>(sp, std::move(streams));
}

} // namespace

class Torture : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Torture, CheckerCleanAndAtomicUnderChaos)
{
    const TortureConfig tc = configFor(GetParam());
    auto sys = makeTortureSystem(tc);
    // Any invariant violation, watchdog fire, or drain failure panics
    // (throws); the run must be completely clean.
    ASSERT_NO_THROW({
        sys->run(12);
        sys->drain();
    }) << "seed " << tc.seed;

    EXPECT_GT(sys->checker().sweepsRun(), 0u);

    // Final-memory atomicity: every committed FetchAdd is accounted for.
    std::uint64_t total = 0;
    for (CoreId c = 0; c < tc.cores; c++)
        total += sys->core(c).committedAtomics();
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < tc.counters; k++)
        sum += sys->mem().functional().read64(addrmap::sharedAtomicWord(k));
    EXPECT_EQ(sum, total) << "seed " << tc.seed;
    EXPECT_GE(total, static_cast<std::uint64_t>(tc.cores) * 12u);
}

/** Seed count: 16 for the PR gate, widened via ROWSIM_TORTURE_SEEDS
 *  (the nightly workflow runs 64). Read once at static-init time, when
 *  gtest instantiates the parameterised suite. */
unsigned
tortureSeedCount()
{
    if (const char *env = std::getenv("ROWSIM_TORTURE_SEEDS");
        env && *env) {
        const unsigned long n = std::strtoul(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    return 16;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Torture,
                         ::testing::Range(0u, tortureSeedCount()),
                         [](const ::testing::TestParamInfo<unsigned> &i) {
                             return "seed" + std::to_string(i.param);
                         });

TEST(TortureDeterminism, SameSeedSameTrace)
{
    auto run_once = [] {
        auto sys = makeTortureSystem(configFor(5));
        const Cycle done = sys->run(12);
        sys->drain();
        return std::make_pair(
            done,
            sys->mem().network().stats().counterValue("messages"));
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a, b);
}
