/**
 * @file
 * Forward-progress watchdog and drain-failure death tests: a genuinely
 * wedged system (directory banks stalled forever via fault injection)
 * must panic naming the stuck component and emit the crash-diagnostics
 * dump — from run(), from runCycles(), and from drain().
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

constexpr Cycle kDeadlock = 3000;
constexpr Cycle kForever = 10'000'000;

/** Two cores issuing loads that can never complete: every directory
 *  bank is stalled far beyond the deadlock bound. */
std::unique_ptr<System>
makeStuckSystem()
{
    SystemParams sp;
    sp.numCores = 2;
    sp.deadlockCycles = kDeadlock;
    // Isolate the watchdog: with checkers on (e.g. ROWSIM_CHECK=all in
    // the environment), the leak checker would catch the stuck MSHR
    // first — legitimately, but these tests target the watchdog path.
    sp.checkCategories = "none";
    std::vector<std::unique_ptr<InstStream>> streams;
    for (CoreId c = 0; c < 2; c++) {
        std::vector<MicroOp> body;
        MicroOp ld;
        ld.cls = OpClass::Load;
        ld.addr = addrmap::sharedDataLine(c);
        ld.endOfIteration = true;
        body.push_back(ld);
        streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    }
    auto sys = std::make_unique<System>(sp, std::move(streams));
    for (unsigned b = 0; b < sys->mem().numBanks(); b++)
        sys->mem().directory(b).injectStall(kForever);
    return sys;
}

} // namespace

TEST(Watchdog, RunPanicsNamingTheStuckCoreAndDumps)
{
    auto sys = makeStuckSystem();
    ::testing::internal::CaptureStderr();
    std::string what;
    try {
        sys->run(5);
        FAIL() << "wedged system did not trip the watchdog";
    } catch (const std::logic_error &e) {
        what = e.what();
    }
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(what.find("[watchdog]"), std::string::npos) << what;
    EXPECT_NE(what.find("core"), std::string::npos) << what;
    EXPECT_NE(err.find("=== ROWSIM CRASH DUMP BEGIN ==="),
              std::string::npos);
    EXPECT_NE(err.find("\"cores\":"), std::string::npos);
    EXPECT_NE(err.find("\"caches\":"), std::string::npos);
    EXPECT_NE(err.find("\"network\":"), std::string::npos);
}

TEST(Watchdog, RunCyclesIsCoveredToo)
{
    auto sys = makeStuckSystem();
    ::testing::internal::CaptureStderr();
    EXPECT_THROW(sys->runCycles(4 * kDeadlock), std::logic_error);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("ROWSIM CRASH DUMP"), std::string::npos);
}

TEST(Watchdog, DrainFailureReportsStuckComponents)
{
    auto sys = makeStuckSystem();
    sys->runCycles(10); // issue the loads into the stalled banks
    ::testing::internal::CaptureStderr();
    std::string what;
    try {
        sys->drain();
        FAIL() << "drain of a wedged system did not panic";
    } catch (const std::logic_error &e) {
        what = e.what();
    }
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(what.find("drain did not quiesce"), std::string::npos)
        << what;
    // The summary names the components that failed to quiesce.
    EXPECT_NE(what.find("core0("), std::string::npos) << what;
    EXPECT_NE(what.find("l1d0("), std::string::npos) << what;
    EXPECT_NE(err.find("ROWSIM CRASH DUMP"), std::string::npos);
    EXPECT_NE(err.find("\"drained\":0"), std::string::npos);
}

TEST(Watchdog, CrashJsonFileIsWrittenWhenRequested)
{
    const char *path = "watchdog_crash_dump.json";
    std::remove(path);
    setenv("ROWSIM_CRASH_JSON", path, 1);
    auto sys = makeStuckSystem();
    ::testing::internal::CaptureStderr();
    EXPECT_THROW(sys->run(5), std::logic_error);
    ::testing::internal::GetCapturedStderr();
    unsetenv("ROWSIM_CRASH_JSON");

    std::FILE *f = std::fopen(path, "r");
    ASSERT_NE(f, nullptr) << "crash JSON file was not written";
    char first = 0;
    ASSERT_EQ(std::fread(&first, 1, 1, f), 1u);
    EXPECT_EQ(first, '{');
    std::fclose(f);
    std::remove(path);
}

TEST(Watchdog, HealthySystemNeverFires)
{
    SystemParams sp;
    sp.numCores = 4;
    std::vector<std::unique_ptr<InstStream>> streams;
    for (CoreId c = 0; c < 4; c++) {
        std::vector<MicroOp> body;
        MicroOp at;
        at.cls = OpClass::AtomicRMW;
        at.aop = AtomicOp::FetchAdd;
        at.addr = addrmap::sharedAtomicWord(0);
        at.value = 1;
        at.endOfIteration = true;
        body.push_back(at);
        streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    }
    System sys(sp, std::move(streams));
    EXPECT_NO_THROW(sys.run(30));
    EXPECT_NO_THROW(sys.drain());
}
