/**
 * @file
 * Idle fast-forward equivalence tests: skipping quiescent cycles must
 * never change a simulated result. Every (workload, policy) case runs
 * with ROWSIM_FF=0 and ROWSIM_FF=1 and the full stats tree must be
 * byte-identical; check mode (tick-through + per-window audit) must run
 * panic-free; fault injection must force fast-forward off.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

RunResult
runWithFF(const char *ff, const std::string &w, const ExpConfig &cfg,
          std::uint64_t quota, unsigned cores = 16)
{
    ::setenv("ROWSIM_FF", ff, 1);
    RunResult r = runExperiment(w, cfg, cores, quota, 1,
                                /*capture_stats=*/true);
    ::unsetenv("ROWSIM_FF");
    return r;
}

} // namespace

TEST(FastForward, OnOffBitIdenticalAcrossPolicySuite)
{
    struct Case
    {
        const char *workload;
        ExpConfig cfg;
        std::uint64_t quota;
    };
    const Case cases[] = {
        // Both contention extremes under every policy: idle windows are
        // longest on the lazy/contended runs, shortest on eager ones.
        {"pc", eagerConfig(), 60},
        {"pc", lazyConfig(), 60},
        {"pc", rowConfig(ContentionDetector::RWDir,
                         PredictorUpdate::SaturateOnContention), 60},
        {"canneal", eagerConfig(), 80},
        {"canneal", lazyConfig(), 80},
        {"cq", rowConfig(ContentionDetector::RWDir,
                         PredictorUpdate::UpDown, true), 60},
        {"tpcc", fencedConfig(), 40},
        {"streamcluster", rowConfig(ContentionDetector::RW,
                                    PredictorUpdate::UpDown), 40},
    };
    for (const Case &c : cases) {
        RunResult off = runWithFF("0", c.workload, c.cfg, c.quota);
        RunResult on = runWithFF("1", c.workload, c.cfg, c.quota);
        EXPECT_EQ(off.cycles, on.cycles)
            << c.workload << "/" << c.cfg.label;
        EXPECT_EQ(off.statsJson, on.statsJson)
            << c.workload << "/" << c.cfg.label;
    }
}

TEST(FastForward, CheckModeAuditsCleanAndMatchesOff)
{
    // check mode ticks through every predicted-idle window and panics
    // on any counter/average drift; its results must equal FF-off.
    const ExpConfig row = rowConfig(
        ContentionDetector::RWDir, PredictorUpdate::SaturateOnContention);
    RunResult off = runWithFF("0", "pc", row, 60);
    RunResult chk = runWithFF("check", "pc", row, 60);
    EXPECT_EQ(off.cycles, chk.cycles);
    EXPECT_EQ(off.statsJson, chk.statsJson);
}

TEST(FastForward, ForcedOffUnderFaultInjection)
{
    // The injector draws from its RNG every cycle, so eliding ticks
    // would change the fault schedule; System must ignore ROWSIM_FF=1
    // when faults are enabled and produce the FF=0 result.
    SystemParams sp = makeParams(eagerConfig(), 8, 1);
    sp.faultCategories = "netdelay,evict";
    sp.faultSeed = 1234;
    sp.faultRate = 50;

    ::setenv("ROWSIM_FF", "0", 1);
    RunResult off = runExperimentParams("pc", sp, "faults_ff0", 40, true);
    ::setenv("ROWSIM_FF", "1", 1);
    RunResult on = runExperimentParams("pc", sp, "faults_ff1", 40, true);
    ::unsetenv("ROWSIM_FF");

    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.statsJson, on.statsJson);
}

TEST(FastForward, IntervalSeriesIdenticalAcrossModes)
{
    // A tight sampling period puts many sample points inside would-be
    // idle windows; fast-forward must land every one of them at the
    // exact cycle with the exact delta. The time-series engine widens
    // the comparison from end-of-run counters to the full per-interval
    // series (cycles, values, Welford state, batch layout, CI) — and
    // check mode additionally audits the series inside every skipped
    // window tick-by-tick.
    ::setenv("ROWSIM_STATS_INTERVAL", "512", 1);
    ExpConfig cfg = lazyConfig();
    cfg.timeseries = "on";

    RunResult off = runWithFF("0", "pc", cfg, 60);
    RunResult on = runWithFF("1", "pc", cfg, 60);
    RunResult chk = runWithFF("check", "pc", cfg, 60);
    ::unsetenv("ROWSIM_STATS_INTERVAL");

    ASSERT_NE(off.statsJson.find("\"timeseries\""), std::string::npos);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.statsJson, on.statsJson);
    EXPECT_EQ(off.cycles, chk.cycles);
    EXPECT_EQ(off.statsJson, chk.statsJson);
}

TEST(FastForward, SkipsActuallyHappenOnIdleWorkloads)
{
    // Guard against the optimization silently disabling itself: a lazy
    // contended run spends most of its time waiting and must fast-forward
    // a nontrivial share of its cycles.
    ::setenv("ROWSIM_FF", "1", 1);
    SystemParams sp = makeParams(lazyConfig(), 16, 1);
    System sys(sp, makeStreams(profileFor("pc"), sp.numCores, sp.seed));
    sys.run(60);
    ::unsetenv("ROWSIM_FF");
    EXPECT_GT(sys.fastForwardedCycles(), 0u);
}
