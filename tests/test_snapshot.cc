/**
 * @file
 * Checkpoint/restore subsystem tests: save → restore → run must be
 * bit-identical to an uninterrupted run (stats tree, cycle counts and
 * state digests) across atomic policies and fast-forward modes; the
 * checkpoint env wiring must short-circuit sweeps without changing any
 * result; damaged or mismatched checkpoint files must be rejected with
 * named errors; the state digest must react to any single perturbed
 * structure; and the committed golden digests must match this build.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/snapshot.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

std::string
statsJsonOf(System &sys)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *mem = open_memstream(&buf, &len);
    EXPECT_NE(mem, nullptr);
    sys.dumpStatsJson(mem);
    std::fclose(mem);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

std::unique_ptr<System>
makeSystem(const std::string &workload, const ExpConfig &cfg,
           unsigned cores, std::uint64_t seed)
{
    return std::make_unique<System>(
        makeParams(cfg, cores, seed),
        makeStreams(profileFor(workload), cores, seed));
}

/** Run the SnapshotError-throwing @p fn and return its message. */
template <typename Fn>
std::string
snapshotErrorOf(Fn &&fn)
{
    try {
        fn();
    } catch (const SnapshotError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected a SnapshotError";
    return "";
}

struct ScopedEnv
{
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char *name_;
};

/** A fresh per-test scratch directory under the build tree. */
std::string
scratchDir(const std::string &tag)
{
    const std::string dir = "snapshot-scratch-" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

TEST(Snapshot, SaveRestoreRunBitIdenticalAcrossPoliciesAndFF)
{
    struct Case
    {
        const char *workload;
        ExpConfig cfg;
    };
    const Case cases[] = {
        {"cq", eagerConfig()},
        {"cq", lazyConfig()},
        {"sps", rowConfig(ContentionDetector::RWDir,
                          PredictorUpdate::SaturateOnContention)},
    };
    const unsigned cores = 4;
    const std::uint64_t seed = 3, quota = 200, warm = 50;

    for (const char *ff : {"0", "1"}) {
        ScopedEnv env("ROWSIM_FF", ff);
        for (const auto &c : cases) {
            SCOPED_TRACE(std::string(c.workload) + "/" + c.cfg.label +
                         " ff=" + ff);

            // Uninterrupted reference run.
            auto cold = makeSystem(c.workload, c.cfg, cores, seed);
            const Cycle cold_cycles = cold->run(quota);
            const std::string cold_stats = statsJsonOf(*cold);
            const std::string cold_digest = cold->stateDigest();

            // Warm up, serialize, restore into a fresh System, finish.
            auto warm_sys = makeSystem(c.workload, c.cfg, cores, seed);
            warm_sys->runWarmup(quota, warm);
            const std::string warm_digest = warm_sys->stateDigest();
            Ser s;
            warm_sys->save(s);
            warm_sys.reset();

            auto resumed = makeSystem(c.workload, c.cfg, cores, seed);
            Deser d(s.bytes());
            resumed->restore(d);
            EXPECT_EQ(resumed->stateDigest(), warm_digest)
                << "restore did not reproduce the saved state";

            EXPECT_EQ(resumed->run(quota), cold_cycles);
            EXPECT_EQ(statsJsonOf(*resumed), cold_stats)
                << "stats tree diverged after restore";
            EXPECT_EQ(resumed->stateDigest(), cold_digest);
        }
    }
}

TEST(Snapshot, CheckpointFileRoundTrip)
{
    const std::string dir = scratchDir("file");
    const std::string path = dir + "/cq.ckpt";
    const ExpConfig cfg = lazyConfig();

    auto a = makeSystem("cq", cfg, 4, 9);
    a->runWarmup(160, 40);
    const std::string saved_digest = a->stateDigest();
    a->saveCheckpoint(path);
    const Cycle a_final = a->run(160);
    const std::string a_stats = statsJsonOf(*a);

    auto b = makeSystem("cq", cfg, 4, 9);
    b->restoreCheckpoint(path);
    EXPECT_EQ(b->stateDigest(), saved_digest);
    EXPECT_EQ(b->run(160), a_final);
    EXPECT_EQ(statsJsonOf(*b), a_stats);

    std::filesystem::remove_all(dir);
}

TEST(Snapshot, CkptEnvShortCircuitsRunsBitExactly)
{
    const std::string dir = scratchDir("env");
    ScopedEnv mode("ROWSIM_CKPT", "auto");
    ScopedEnv at("ROWSIM_CKPT_AT", "40");
    ScopedEnv where("ROWSIM_CKPT_DIR", dir);

    const ExpConfig cfg = rowConfig(ContentionDetector::RWDir,
                                    PredictorUpdate::SaturateOnContention);
    // Cold reference: same run with the checkpoint machinery off.
    RunResult cold;
    {
        ::unsetenv("ROWSIM_CKPT");
        cold = runExperiment("sps", cfg, 4, 160, 5, true);
        ::setenv("ROWSIM_CKPT", "auto", 1);
    }
    // First auto run populates the checkpoint, second restores from it.
    const RunResult populate = runExperiment("sps", cfg, 4, 160, 5, true);
    EXPECT_FALSE(std::filesystem::is_empty(dir));
    const RunResult reuse = runExperiment("sps", cfg, 4, 160, 5, true);

    EXPECT_EQ(populate.cycles, cold.cycles);
    EXPECT_EQ(reuse.cycles, cold.cycles);
    EXPECT_EQ(populate.statsJson, cold.statsJson);
    EXPECT_EQ(reuse.statsJson, cold.statsJson);

    // restore mode demands the file; a missing key is fatal, not silent.
    ::setenv("ROWSIM_CKPT", "restore", 1);
    EXPECT_THROW(runExperiment("sps", cfg, 4, 160, /*seed=*/977, true),
                 std::runtime_error);

    std::filesystem::remove_all(dir);
}

TEST(Snapshot, DamagedFilesFailWithNamedErrors)
{
    const std::string dir = scratchDir("damage");
    const std::string path = dir + "/img.ckpt";

    auto sys = makeSystem("cq", eagerConfig(), 4, 2);
    sys->runWarmup(80, 20);
    sys->saveCheckpoint(path);

    auto bytesOf = [&](const std::string &p) {
        std::ifstream in(p, std::ios::binary);
        return std::vector<char>(std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>());
    };
    auto writeBytes = [&](const std::string &p,
                          const std::vector<char> &b) {
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        out.write(b.data(), static_cast<std::streamsize>(b.size()));
    };
    const std::vector<char> good = bytesOf(path);
    auto freshRestore = [&](const std::string &p) {
        auto victim = makeSystem("cq", eagerConfig(), 4, 2);
        victim->restoreCheckpoint(p);
    };

    // Not a snapshot at all.
    writeBytes(path, {'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l',
                      'd', '!', '!', '!', '!', '!', '!', '!', '!', '!'});
    EXPECT_NE(snapshotErrorOf([&] { freshRestore(path); })
                  .find("bad magic"),
              std::string::npos);

    // Version skew (byte 8 is the low byte of the format version).
    std::vector<char> skewed = good;
    skewed[8] = static_cast<char>(skewed[8] + 1);
    writeBytes(path, skewed);
    EXPECT_NE(snapshotErrorOf([&] { freshRestore(path); })
                  .find("format version"),
              std::string::npos);

    // Truncation.
    writeBytes(path,
               std::vector<char>(good.begin(), good.end() - 40));
    EXPECT_NE(snapshotErrorOf([&] { freshRestore(path); })
                  .find("truncated"),
              std::string::npos);

    // Payload corruption (flip one byte past the 28-byte header).
    std::vector<char> corrupt = good;
    corrupt[good.size() / 2] =
        static_cast<char>(corrupt[good.size() / 2] ^ 0x40);
    writeBytes(path, corrupt);
    EXPECT_NE(snapshotErrorOf([&] { freshRestore(path); })
                  .find("digest mismatch"),
              std::string::npos);

    // Configuration mismatch: image taken under eager, restored under
    // lazy — rejected by fingerprint before any payload is touched.
    writeBytes(path, good);
    auto other = makeSystem("cq", lazyConfig(), 4, 2);
    EXPECT_NE(snapshotErrorOf([&] { other->restoreCheckpoint(path); })
                  .find("different configuration"),
              std::string::npos);

    std::filesystem::remove_all(dir);
}

TEST(Snapshot, DigestReactsToEverySinglePerturbation)
{
    auto a = makeSystem("cq", lazyConfig(), 4, 11);
    auto b = makeSystem("cq", lazyConfig(), 4, 11);
    a->run(60);
    b->run(60);
    const std::string a_digest = a->stateDigest();
    ASSERT_EQ(a_digest, b->stateDigest())
        << "identical runs must produce identical digests";

    // Each perturbation touches exactly one structure; the digest must
    // move every time.
    std::string last = b->stateDigest();
    auto expectChanged = [&](const char *what) {
        const std::string next = b->stateDigest();
        EXPECT_NE(next, last) << what << " not covered by the digest";
        last = next;
    };

    b->mem().functional().write64(
        0x20000, b->mem().functional().read64(0x20000) + 1);
    expectChanged("functional memory");

    b->core(0).branchPredictor().update(0x1234, true);
    expectChanged("branch predictor");

    b->core(1).predictor().update(0x1234, true);
    expectChanged("RoW contention predictor");

    b->mem().cache(2).testSetLineState(0x40000, CacheState::Shared,
                                       b->now());
    expectChanged("cache line state");

    EXPECT_EQ(a->stateDigest(), a_digest)
        << "perturbing b must not affect a";
}

TEST(Snapshot, GoldenDigestsMatchThisBuild)
{
    const std::string golden_path =
        std::string(ROWSIM_GOLDEN_DIR) + "/digests.json";
    std::ifstream in(golden_path);
    ASSERT_TRUE(in.good()) << "missing " << golden_path;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();

    auto strField = [&](const std::string &entry, const char *key) {
        const std::string pat = std::string("\"") + key + "\": \"";
        const std::size_t at = entry.find(pat);
        EXPECT_NE(at, std::string::npos) << key;
        const std::size_t begin = at + pat.size();
        return entry.substr(begin, entry.find('"', begin) - begin);
    };
    auto intField = [&](const std::string &entry, const char *key) {
        const std::string pat = std::string("\"") + key + "\": ";
        const std::size_t at = entry.find(pat);
        EXPECT_NE(at, std::string::npos) << key;
        return std::strtoull(entry.c_str() + at + pat.size(), nullptr,
                             10);
    };

    unsigned checked = 0;
    std::size_t pos = json.find('[');
    while ((pos = json.find('{', pos + 1)) != std::string::npos) {
        const std::string entry =
            json.substr(pos, json.find('}', pos) - pos);
        const std::string workload = strField(entry, "workload");
        const std::string config = strField(entry, "config");
        const unsigned cores =
            static_cast<unsigned>(intField(entry, "cores"));
        const std::uint64_t quota = intField(entry, "quota");
        const std::uint64_t seed = intField(entry, "seed");
        const std::string expect = strField(entry, "digest");

        // Mirror of tools/state_digest.cc:configByName.
        ExpConfig cfg;
        if (config == "eager") {
            cfg = eagerConfig();
        } else if (config == "lazy") {
            cfg = lazyConfig();
        } else {
            ASSERT_EQ(config, "row");
            cfg = rowConfig(ContentionDetector::RWDir,
                            PredictorUpdate::SaturateOnContention);
        }
        auto sys = makeSystem(workload, cfg, cores, seed);
        sys->run(quota);
        EXPECT_EQ(sys->stateDigest(), expect)
            << workload << "/" << config
            << ": regenerate tests/golden/digests.json with "
               "tools/state_digest if this change is intentional";
        checked++;
    }
    EXPECT_GE(checked, 15u) << "golden suite unexpectedly small";
}
