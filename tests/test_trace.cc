/**
 * @file
 * Tests for the trace layer: category parsing, runtime gating, text-sink
 * ordering, Chrome trace-event JSON well-formedness, and the end-to-end
 * guarantee that the lock->unlock duration events in the Chrome trace
 * agree with the lockToUnlock metric of the run's report.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

/** Reset the singleton's sinks and mask after each test. */
struct TraceGuard
{
    ~TraceGuard()
    {
        Trace::instance().configure(0);
        Trace::instance().closeAll();
    }
};

/** Read an entire FILE* (rewinding first). */
std::string
slurp(std::FILE *f)
{
    std::string out;
    std::rewind(f);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    return out;
}

std::string
slurpFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return {};
    std::string out = slurp(f);
    std::fclose(f);
    return out;
}

// ---------------------------------------------------------------------
// Minimal JSON parser: enough to validate the Chrome trace output
// without external dependencies. Throws std::runtime_error on any
// syntax error, so a malformed trace fails the test.
// ---------------------------------------------------------------------

struct Json
{
    enum Type { Null, Bool, Number, String, Array, Object } type = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json &
    at(const std::string &key) const
    {
        static const Json null;
        auto it = obj.find(key);
        return it == obj.end() ? null : it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    Json
    parse()
    {
        Json v = value();
        ws();
        if (pos != s.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos) + ": " + why);
    }

    void
    ws()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r')) {
            pos++;
        }
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos++;
    }

    Json
    value()
    {
        ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true", [] { Json j; j.type = Json::Bool; j.b = true; return j; }());
          case 'f': return literal("false", [] { Json j; j.type = Json::Bool; return j; }());
          case 'n': return literal("null", Json{});
          default: return number();
        }
    }

    Json
    literal(const std::string &word, Json result)
    {
        if (s.compare(pos, word.size(), word) != 0)
            fail("bad literal");
        pos += word.size();
        return result;
    }

    Json
    object()
    {
        Json j;
        j.type = Json::Object;
        expect('{');
        ws();
        if (peek() == '}') {
            pos++;
            return j;
        }
        while (true) {
            ws();
            Json key = string();
            ws();
            expect(':');
            j.obj[key.str] = value();
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect('}');
            return j;
        }
    }

    Json
    array()
    {
        Json j;
        j.type = Json::Array;
        expect('[');
        ws();
        if (peek() == ']') {
            pos++;
            return j;
        }
        while (true) {
            j.arr.push_back(value());
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect(']');
            return j;
        }
    }

    Json
    string()
    {
        Json j;
        j.type = Json::String;
        expect('"');
        while (true) {
            char c = peek();
            pos++;
            if (c == '"')
                return j;
            if (c == '\\') {
                char e = peek();
                pos++;
                switch (e) {
                  case '"': j.str += '"'; break;
                  case '\\': j.str += '\\'; break;
                  case '/': j.str += '/'; break;
                  case 'n': j.str += '\n'; break;
                  case 't': j.str += '\t'; break;
                  case 'r': j.str += '\r'; break;
                  case 'u':
                    if (pos + 4 > s.size())
                        fail("bad \\u escape");
                    pos += 4; // code point value not needed by the tests
                    j.str += '?';
                    break;
                  default: fail("bad escape");
                }
            } else {
                j.str += c;
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos;
        if (peek() == '-')
            pos++;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            pos++;
        }
        if (pos == start)
            fail("expected number");
        Json j;
        j.type = Json::Number;
        j.num = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
        return j;
    }

    const std::string &s;
    std::size_t pos = 0;
};

} // namespace

// ---------------------------------------------------------------------
// Category parsing
// ---------------------------------------------------------------------

TEST(TraceCategories, ParsesNamesAllAndNone)
{
    EXPECT_EQ(parseTraceCategories(""), 0u);
    EXPECT_EQ(parseTraceCategories("none"), 0u);
    EXPECT_EQ(parseTraceCategories("all"), traceCategoryAll);
    EXPECT_EQ(parseTraceCategories("atomic"),
              static_cast<std::uint32_t>(TraceCategory::Atomic));
    EXPECT_EQ(parseTraceCategories("atomic,coherence"),
              static_cast<std::uint32_t>(TraceCategory::Atomic) |
                  static_cast<std::uint32_t>(TraceCategory::Coherence));
    // Whitespace and case are forgiven.
    EXPECT_EQ(parseTraceCategories(" Atomic , NETWORK "),
              static_cast<std::uint32_t>(TraceCategory::Atomic) |
                  static_cast<std::uint32_t>(TraceCategory::Network));
}

TEST(TraceCategories, UnknownNameIsFatal)
{
    EXPECT_THROW(parseTraceCategories("atomic,bogus"), std::runtime_error);
}

TEST(TraceCategories, EveryCategoryRoundTrips)
{
    for (std::uint32_t bit = 1; bit <= traceCategoryAll; bit <<= 1) {
        const auto c = static_cast<TraceCategory>(bit);
        EXPECT_EQ(parseTraceCategories(traceCategoryName(c)), bit)
            << traceCategoryName(c);
    }
}

// ---------------------------------------------------------------------
// Runtime gating + text sink
// ---------------------------------------------------------------------

TEST(TraceGating, DisabledCategoriesEmitNothing)
{
    TraceGuard guard;
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    Trace::instance().setTextSink(tmp, false);
    Trace::instance().configure(
        static_cast<std::uint32_t>(TraceCategory::Atomic));

    EXPECT_TRUE(Trace::anyEnabled());
    EXPECT_TRUE(Trace::enabled(TraceCategory::Atomic));
    EXPECT_FALSE(Trace::enabled(TraceCategory::Coherence));

    ROWSIM_TRACE(TraceCategory::Atomic, 10, "visible %d", 1);
    ROWSIM_TRACE(TraceCategory::Coherence, 20, "invisible %d", 2);

    std::string out = slurp(tmp);
    Trace::instance().setTextSink(nullptr, false);
    std::fclose(tmp);

    EXPECT_NE(out.find("visible 1"), std::string::npos);
    EXPECT_NE(out.find("[atomic]"), std::string::npos);
    EXPECT_EQ(out.find("invisible"), std::string::npos);
}

TEST(TraceGating, MaskOffShortCircuitsArgumentEvaluation)
{
    TraceGuard guard;
    Trace::instance().configure(0);
    int evaluations = 0;
    auto expensive = [&evaluations] {
        evaluations++;
        return 42;
    };
    ROWSIM_TRACE(TraceCategory::Atomic, 1, "never %d", expensive());
    EXPECT_EQ(evaluations, 0);
}

TEST(TraceText, EventsAppearInEmissionOrder)
{
    TraceGuard guard;
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    Trace::instance().setTextSink(tmp, false);
    Trace::instance().configure(traceCategoryAll);

    ROWSIM_TRACE(TraceCategory::Atomic, 100, "first");
    ROWSIM_TRACE(TraceCategory::Network, 200, "second");
    ROWSIM_TRACE(TraceCategory::Directory, 300, "third");

    std::string out = slurp(tmp);
    Trace::instance().setTextSink(nullptr, false);
    std::fclose(tmp);

    auto a = out.find("first");
    auto b = out.find("second");
    auto c = out.find("third");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    ASSERT_NE(c, std::string::npos);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    // Cycle stamps render right-aligned in a fixed-width column.
    EXPECT_NE(out.find("100 [atomic] first"), std::string::npos);
}

// ---------------------------------------------------------------------
// Chrome trace JSON
// ---------------------------------------------------------------------

TEST(TraceJson, EmitsWellFormedChromeTrace)
{
    TraceGuard guard;
    const std::string path = "rowsim_test_trace_events.json";
    Trace &t = Trace::instance();
    t.configure(traceCategoryAll);
    ASSERT_TRUE(t.openJson(path));

    t.nameProcess(0, "core0");
    t.nameThread(0, traceTidAtomics, "atomics");
    t.complete(TraceCategory::Atomic, 0, traceTidAtomics, "lock", 100, 150,
               "{\"seq\":1}");
    t.span(TraceCategory::Directory, tracePidDirBase, 0, "blocked", 0xabc,
           200, 260);
    t.instant(TraceCategory::Coherence, 0, traceTidCache, "lockSteal", 300);
    t.counter(TraceCategory::Pipeline, 0, "occupancy", 400, 17.0);
    t.closeJson();

    Json root = JsonParser(slurpFile(path)).parse();
    std::remove(path.c_str());

    ASSERT_EQ(root.type, Json::Object);
    const Json &events = root.at("traceEvents");
    ASSERT_EQ(events.type, Json::Array);
    // 2 metadata + 1 X + 2 (b/e) + 1 i + 1 C
    ASSERT_EQ(events.arr.size(), 7u);

    for (const Json &e : events.arr) {
        ASSERT_EQ(e.type, Json::Object);
        EXPECT_EQ(e.at("name").type, Json::String);
        EXPECT_EQ(e.at("ph").type, Json::String);
        EXPECT_EQ(e.at("pid").type, Json::Number);
    }

    const Json &x = events.arr[2];
    EXPECT_EQ(x.at("ph").str, "X");
    EXPECT_EQ(x.at("name").str, "lock");
    EXPECT_DOUBLE_EQ(x.at("ts").num, 100.0);
    EXPECT_DOUBLE_EQ(x.at("dur").num, 50.0);
    EXPECT_DOUBLE_EQ(x.at("args").at("seq").num, 1.0);

    const Json &b = events.arr[3];
    const Json &end = events.arr[4];
    EXPECT_EQ(b.at("ph").str, "b");
    EXPECT_EQ(end.at("ph").str, "e");
    EXPECT_EQ(b.at("id").str, end.at("id").str);
    EXPECT_DOUBLE_EQ(end.at("ts").num - b.at("ts").num, 60.0);

    EXPECT_EQ(events.arr[5].at("ph").str, "i");
    EXPECT_EQ(events.arr[5].at("s").str, "t");
    EXPECT_EQ(events.arr[6].at("ph").str, "C");
    EXPECT_DOUBLE_EQ(events.arr[6].at("args").at("value").num, 17.0);
}

TEST(TraceJson, DisabledCategorySuppressesEvents)
{
    TraceGuard guard;
    const std::string path = "rowsim_test_trace_gated.json";
    Trace &t = Trace::instance();
    t.configure(static_cast<std::uint32_t>(TraceCategory::Atomic));
    ASSERT_TRUE(t.openJson(path));
    t.complete(TraceCategory::Network, tracePidNetwork, 0, "GetX", 0, 10);
    t.complete(TraceCategory::Atomic, 0, traceTidAtomics, "lock", 0, 10);
    t.closeJson();

    Json root = JsonParser(slurpFile(path)).parse();
    std::remove(path.c_str());
    ASSERT_EQ(root.at("traceEvents").arr.size(), 1u);
    EXPECT_EQ(root.at("traceEvents").arr[0].at("name").str, "lock");
}

// ---------------------------------------------------------------------
// End-to-end: trace a contended-counter run and cross-check the Chrome
// trace against the run report (the ISSUE acceptance criterion).
// ---------------------------------------------------------------------

TEST(TraceIntegration, LockDurationsMatchRunReport)
{
    TraceGuard guard;
    const std::string path = "rowsim_test_trace_counter.json";

    ExpConfig cfg = eagerConfig();
    SystemParams sp = makeParams(cfg, /*num_cores=*/8, /*seed=*/1);
    sp.traceCategories = "atomic,coherence";
    sp.traceJsonPath = path;

    RunResult r =
        runExperimentParams("counter", sp, cfg.label, /*quota=*/40);
    Trace::instance().closeJson();

    ASSERT_GT(r.atomicsUnlocked, 0u);
    ASSERT_GT(r.lockToUnlock, 0.0);

    Json root = JsonParser(slurpFile(path)).parse();
    std::remove(path.c_str());

    double sum = 0;
    std::uint64_t n = 0;
    for (const Json &e : root.at("traceEvents").arr) {
        if (e.at("ph").str == "X" && e.at("name").str == "lock") {
            sum += e.at("dur").num;
            n++;
        }
    }
    ASSERT_GT(n, 0u);
    // Every lock->unlock interval sampled into the atomicLockToUnlock
    // Average is also emitted as one "lock" complete event (same guard,
    // same operands), so the means agree exactly up to float rounding.
    EXPECT_EQ(n, r.atomicsUnlocked);
    EXPECT_NEAR(sum / static_cast<double>(n), r.lockToUnlock,
                1e-9 * (1.0 + r.lockToUnlock));

    // The JSON knows about the traced categories only.
    bool saw_network = false;
    for (const Json &e : root.at("traceEvents").arr) {
        if (e.at("cat").str == "network")
            saw_network = true;
    }
    EXPECT_FALSE(saw_network);
}

TEST(TraceIntegration, StatsDumpIsValidJsonWithIntervals)
{
    SystemParams sp = makeParams(eagerConfig(), /*num_cores=*/4,
                                 /*seed=*/1);
    sp.statsInterval = 500;
    System sys(sp, makeStreams(profileFor("counter"), sp.numCores,
                               sp.seed));
    sys.run(/*iter_quota=*/10);

    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    sys.dumpStatsJson(tmp);
    Json root = JsonParser(slurp(tmp)).parse();
    std::fclose(tmp);

    EXPECT_GT(root.at("cycles").num, 0.0);
    EXPECT_GT(root.at("instructions").num, 0.0);
    EXPECT_DOUBLE_EQ(root.at("numCores").num, 4.0);

    const Json &groups = root.at("groups");
    ASSERT_EQ(groups.type, Json::Object);
    EXPECT_EQ(groups.at("sim").type, Json::Object);
    EXPECT_GT(groups.at("sim").at("ipc").num, 0.0);
    EXPECT_GT(groups.at("core0").at("dispatched").num, 0.0);
    EXPECT_EQ(groups.at("network").type, Json::Object);

    const Json &iv = root.at("intervals");
    ASSERT_EQ(iv.type, Json::Object);
    EXPECT_DOUBLE_EQ(iv.at("period").num, 500.0);
    ASSERT_FALSE(iv.at("cycles").arr.empty());
    const Json &insts = iv.at("series").at("instructions");
    ASSERT_EQ(insts.type, Json::Array);
    EXPECT_EQ(insts.arr.size(), iv.at("cycles").arr.size());
}

TEST(TraceIntegration, RunReportJsonParsesAndMatchesFields)
{
    ExpConfig cfg = eagerConfig();
    RunResult r = runExperiment("counter", cfg, /*num_cores=*/4,
                                /*quota=*/20);
    Json j = JsonParser(r.toJson()).parse();
    EXPECT_EQ(j.at("workload").str, "counter");
    EXPECT_EQ(j.at("config").str, "eager");
    EXPECT_DOUBLE_EQ(j.at("cycles").num, static_cast<double>(r.cycles));
    EXPECT_DOUBLE_EQ(j.at("atomicsUnlocked").num,
                     static_cast<double>(r.atomicsUnlocked));
    EXPECT_NEAR(j.at("lockToUnlock").num, r.lockToUnlock, 1e-4);
}
