/**
 * @file
 * Unit tests for common infrastructure: address helpers, logging,
 * micro-op classification, and configuration defaults (Table I).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "cpu/microop.hh"
#include "sim/microbench.hh"

using namespace rowsim;

TEST(AddressHelpers, LineAlignment)
{
    EXPECT_EQ(lineAlign(0x1000), 0x1000u);
    EXPECT_EQ(lineAlign(0x103F), 0x1000u);
    EXPECT_EQ(lineAlign(0x1040), 0x1040u);
    EXPECT_EQ(lineNum(0x1040), 0x41u);
    EXPECT_TRUE(sameLine(0x1000, 0x103F));
    EXPECT_FALSE(sameLine(0x1000, 0x1040));
}

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 7, "abc"), "x=7 y=abc");
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(ROWSIM_PANIC("boom %d", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(ROWSIM_FATAL("bad config"), std::runtime_error);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(ROWSIM_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(ROWSIM_ASSERT(1 + 1 == 3, "not fine"), std::logic_error);
}

TEST(Logging, ParseEnvU64AcceptsOnlyFullDecimalStrings)
{
    EXPECT_EQ(parseEnvU64("X", "0"), 0u);
    EXPECT_EQ(parseEnvU64("X", "5000"), 5000u);
    // "10k" used to silently parse as 10; now the whole string must be
    // a decimal number.
    EXPECT_THROW(parseEnvU64("ROWSIM_STATS_INTERVAL", "10k"),
                 std::runtime_error);
    EXPECT_THROW(parseEnvU64("X", "garbage"), std::runtime_error);
    EXPECT_THROW(parseEnvU64("X", ""), std::runtime_error);
    EXPECT_THROW(parseEnvU64("X", " 10"), std::runtime_error);
    EXPECT_THROW(parseEnvU64("X", "-1"), std::runtime_error);
    EXPECT_THROW(parseEnvU64("X", "99999999999999999999999"),
                 std::runtime_error);
}

TEST(MicroOp, ClassificationHelpers)
{
    MicroOp op;
    op.cls = OpClass::Load;
    EXPECT_TRUE(op.isMem());
    op.cls = OpClass::AtomicRMW;
    EXPECT_TRUE(op.isMem());
    op.cls = OpClass::IntAlu;
    EXPECT_FALSE(op.isMem());
    op.cls = OpClass::Fence;
    EXPECT_FALSE(op.isMem());
}

TEST(MicroOp, NamesRoundTrip)
{
    EXPECT_STREQ(opClassName(OpClass::AtomicRMW), "AtomicRMW");
    EXPECT_STREQ(opClassName(OpClass::Fence), "Fence");
    EXPECT_STREQ(atomicOpName(AtomicOp::CompareSwap), "CompareSwap");
    EXPECT_STREQ(rmwKindName(RmwKind::SWAP), "SWAP");
}

TEST(Config, TableOneDefaults)
{
    SystemParams sp;
    EXPECT_EQ(sp.numCores, 32u);
    EXPECT_EQ(sp.core.fetchWidth, 6u);
    EXPECT_EQ(sp.core.issueWidth, 12u);
    EXPECT_EQ(sp.core.commitWidth, 12u);
    EXPECT_EQ(sp.core.robEntries, 512u);
    EXPECT_EQ(sp.core.lqEntries, 192u);
    EXPECT_EQ(sp.core.sbEntries, 128u);
    EXPECT_EQ(sp.core.aqEntries, 16u);
    // 48KB, 12-way, 64B lines -> 64 sets.
    EXPECT_EQ(sp.mem.l1Sets * sp.mem.l1Ways * lineBytes, 48u * 1024);
    EXPECT_EQ(sp.mem.l1HitLatency, 5u);
    // 1MB, 8-way private L2.
    EXPECT_EQ(sp.mem.l2Sets * sp.mem.l2Ways * lineBytes, 1024u * 1024);
    EXPECT_EQ(sp.mem.l2HitLatency, 12u);
    // 4MB per bank, 16-way L3.
    EXPECT_EQ(sp.mem.l3SetsPerBank * sp.mem.l3Ways * lineBytes,
              4u * 1024 * 1024);
    EXPECT_EQ(sp.mem.l3HitLatency, 35u);
    EXPECT_EQ(sp.mem.memoryLatency, 160u);
}

TEST(Config, RowDefaultsMatchPaper)
{
    RowConfig rc;
    EXPECT_EQ(rc.predictorEntries, 64u);
    EXPECT_EQ(rc.counterBits, 4u);
    EXPECT_EQ(rc.latencyThreshold, 400u);
    EXPECT_EQ(rc.timestampBits, 14u);
    // §IV-F: total RoW storage = 64 bytes = predictor (256 bits) + AQ
    // augmentation (16 x 16 bits = 256 bits).
    unsigned total_bits =
        rc.predictorEntries * rc.counterBits + 16 * (1 + 1 + 14);
    EXPECT_EQ(total_bits, 64u * 8);
}
