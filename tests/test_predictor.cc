/**
 * @file
 * Unit tests for the RoW contention predictor (§IV-D, §IV-F).
 */

#include <gtest/gtest.h>

#include "row/predictor.hh"

using namespace rowsim;

namespace
{
RowConfig
cfg(PredictorUpdate u)
{
    RowConfig c;
    c.update = u;
    return c;
}
} // namespace

TEST(Predictor, InitiallyPredictsNotContended)
{
    ContentionPredictor p(cfg(PredictorUpdate::UpDown));
    for (Addr pc = 0; pc < 1024; pc += 4)
        EXPECT_FALSE(p.predictContended(pc));
}

TEST(Predictor, XorIndexMatchesPaper)
{
    // §IV-D: 6 LSBs of the PC XORed with the following 6 bits.
    ContentionPredictor p(cfg(PredictorUpdate::UpDown));
    const Addr pc = 0xABC;
    const unsigned expected = (pc & 63) ^ ((pc >> 6) & 63);
    EXPECT_EQ(p.index(pc), expected);
    EXPECT_LT(p.index(0xDEADBEEF), 64u);
}

TEST(Predictor, UpDownNeedsTwoContentionsToGoLazy)
{
    // Threshold 1: counter must exceed 1.
    ContentionPredictor p(cfg(PredictorUpdate::UpDown));
    p.update(0x40, true);
    EXPECT_FALSE(p.predictContended(0x40)); // counter == 1
    p.update(0x40, true);
    EXPECT_TRUE(p.predictContended(0x40)); // counter == 2
}

TEST(Predictor, UpDownDecaysBack)
{
    ContentionPredictor p(cfg(PredictorUpdate::UpDown));
    p.update(0x40, true);
    p.update(0x40, true);
    ASSERT_TRUE(p.predictContended(0x40));
    p.update(0x40, false);
    EXPECT_FALSE(p.predictContended(0x40)); // back to 1
}

TEST(Predictor, SaturateJumpsToMaxOnContention)
{
    ContentionPredictor p(cfg(PredictorUpdate::SaturateOnContention));
    p.update(0x40, true);
    EXPECT_TRUE(p.predictContended(0x40));
    EXPECT_EQ(p.counter(p.index(0x40)), 15u); // 2^4 - 1
}

TEST(Predictor, SaturateNeedsFifteenCalmUpdatesToFlip)
{
    // §VI: "the saturating predictor needs to not face contention fifteen
    // consecutive times before the prediction moves to not contended".
    ContentionPredictor p(cfg(PredictorUpdate::SaturateOnContention));
    p.update(0x40, true);
    for (int i = 0; i < 14; i++) {
        p.update(0x40, false);
        EXPECT_TRUE(p.predictContended(0x40)) << "after " << i + 1;
    }
    p.update(0x40, false); // 15th
    EXPECT_FALSE(p.predictContended(0x40));
}

TEST(Predictor, CounterSaturatesAtBounds)
{
    ContentionPredictor p(cfg(PredictorUpdate::UpDown));
    for (int i = 0; i < 100; i++)
        p.update(0x40, true);
    EXPECT_EQ(p.counter(p.index(0x40)), 15u);
    for (int i = 0; i < 100; i++)
        p.update(0x40, false);
    EXPECT_EQ(p.counter(p.index(0x40)), 0u);
}

TEST(Predictor, StorageIs256BitsAtPaperGeometry)
{
    // §IV-F: 64 entries x 4 bits = 256 bits (32 bytes).
    ContentionPredictor p(cfg(PredictorUpdate::UpDown));
    EXPECT_EQ(p.storageBits(), 256u);
}

TEST(Predictor, AliasingSharesEntries)
{
    // PCs mapping to the same XOR index share a counter (§IV-D discusses
    // the resulting mispredictions when entry count shrinks).
    ContentionPredictor p(cfg(PredictorUpdate::UpDown));
    const Addr pc_a = 0x1;           // index 1
    const Addr pc_b = (1ULL << 6) | 0; // 0 ^ 1 -> index 1
    ASSERT_EQ(p.index(pc_a), p.index(pc_b));
    p.update(pc_a, true);
    p.update(pc_a, true);
    EXPECT_TRUE(p.predictContended(pc_b));
}

TEST(Predictor, SingleEntryConfigAliasesEverything)
{
    RowConfig c = cfg(PredictorUpdate::UpDown);
    c.predictorEntries = 1;
    ContentionPredictor p(c);
    p.update(0x1234, true);
    p.update(0x9876, true);
    EXPECT_TRUE(p.predictContended(0x5555));
}

TEST(Predictor, AccuracyStatsTrackOutcomes)
{
    ContentionPredictor p(cfg(PredictorUpdate::UpDown));
    p.update(0x40, false); // predicted false, outcome false: correct
    p.update(0x40, true);  // predicted false, outcome true: wrong
    EXPECT_EQ(p.stats().counterValue("updates"), 2u);
    EXPECT_EQ(p.stats().counterValue("correct"), 1u);
    EXPECT_EQ(p.stats().counterValue("contendedOutcomes"), 1u);
}

TEST(Predictor, RejectsNonPowerOfTwoEntries)
{
    RowConfig c = cfg(PredictorUpdate::UpDown);
    c.predictorEntries = 48;
    EXPECT_THROW(ContentionPredictor p(c), std::logic_error);
}
