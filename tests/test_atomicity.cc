/**
 * @file
 * Property tests for the atomicity and TSO invariants (DESIGN.md §6):
 * under EVERY atomic execution policy and forwarding setting, concurrent
 * fetch-and-add traffic must never lose an update. Timing and values are
 * decoupled in the simulator, so a locking bug (e.g. an external request
 * slipping past a locked line) shows up as a wrong final counter value.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

struct PolicyCase
{
    AtomicPolicy policy;
    bool forwarding;
    ContentionDetector detector;
    const char *name;
};

const PolicyCase kCases[] = {
    {AtomicPolicy::Eager, false, ContentionDetector::RWDir, "eager"},
    {AtomicPolicy::Eager, true, ContentionDetector::RWDir, "eager_fwd"},
    {AtomicPolicy::Lazy, false, ContentionDetector::RWDir, "lazy"},
    {AtomicPolicy::Fenced, false, ContentionDetector::RWDir, "fenced"},
    {AtomicPolicy::RoW, false, ContentionDetector::EW, "row_ew"},
    {AtomicPolicy::RoW, false, ContentionDetector::RW, "row_rw"},
    {AtomicPolicy::RoW, false, ContentionDetector::RWDir, "row_rwdir"},
    {AtomicPolicy::RoW, true, ContentionDetector::RWDir, "row_rwdir_fwd"},
};

std::unique_ptr<System>
makeCounterSystem(const PolicyCase &pc, unsigned cores, unsigned counters,
                  bool with_store_before, bool with_filler)
{
    SystemParams sp;
    sp.numCores = cores;
    sp.core.atomicPolicy = pc.policy;
    sp.core.forwardToAtomics = pc.forwarding;
    sp.core.row.detector = pc.detector;

    std::vector<std::unique_ptr<InstStream>> streams;
    for (CoreId c = 0; c < cores; c++) {
        std::vector<MicroOp> body;
        if (with_filler) {
            MicroOp ld;
            ld.cls = OpClass::Load;
            ld.addr = addrmap::privateLine(c, (c * 37) % 512);
            body.push_back(ld);
            MicroOp a;
            a.cls = OpClass::IntAlu;
            body.push_back(a);
        }
        // Round-robin over the shared counters, per-core phase shift.
        for (unsigned k = 0; k < counters; k++) {
            Addr target = addrmap::sharedAtomicWord((c + k) % counters);
            if (with_store_before) {
                MicroOp st;
                st.cls = OpClass::Store;
                st.addr = target + 8; // same line, different word
                st.value = c;
                body.push_back(st);
            }
            MicroOp at;
            at.cls = OpClass::AtomicRMW;
            at.aop = AtomicOp::FetchAdd;
            at.addr = target;
            at.value = 1;
            at.pc = 0x9000 + 4 * k;
            body.push_back(at);
        }
        body.back().endOfIteration = true;
        streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    }
    return std::make_unique<System>(sp, std::move(streams));
}

} // namespace

class AtomicityTest : public ::testing::TestWithParam<PolicyCase>
{
};

TEST_P(AtomicityTest, SingleHotCounterNeverLosesUpdates)
{
    const auto &pc = GetParam();
    auto sys = makeCounterSystem(pc, 8, 1, false, false);
    sys->run(40);
    sys->drain();
    std::uint64_t total = 0;
    for (CoreId c = 0; c < 8; c++)
        total += sys->core(c).committedAtomics();
    EXPECT_EQ(sys->mem().functional().read64(addrmap::sharedAtomicWord(0)),
              total)
        << "policy " << pc.name;
    EXPECT_GE(total, 8u * 40u);
}

TEST_P(AtomicityTest, MultipleCountersPartitionExactly)
{
    const auto &pc = GetParam();
    constexpr unsigned counters = 4;
    auto sys = makeCounterSystem(pc, 8, counters, false, true);
    sys->run(25);
    sys->drain();
    // Each iteration adds exactly 1 to every counter on every core, so
    // all counters must be equal and sum to total atomics.
    std::uint64_t total = 0;
    for (CoreId c = 0; c < 8; c++)
        total += sys->core(c).committedAtomics();
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < counters; k++)
        sum += sys->mem().functional().read64(addrmap::sharedAtomicWord(k));
    EXPECT_EQ(sum, total) << "policy " << pc.name;
}

TEST_P(AtomicityTest, StoreBeforeAtomicLocalityPatternIsStillAtomic)
{
    // The cq-style pattern (store to the line, then FAA) exercises the
    // forwarding / promotion machinery; the counter words must still
    // account for every committed FAA.
    const auto &pc = GetParam();
    auto sys = makeCounterSystem(pc, 8, 2, true, true);
    sys->run(25);
    sys->drain();
    std::uint64_t total = 0;
    for (CoreId c = 0; c < 8; c++)
        total += sys->core(c).committedAtomics();
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < 2; k++)
        sum += sys->mem().functional().read64(addrmap::sharedAtomicWord(k));
    EXPECT_EQ(sum, total) << "policy " << pc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, AtomicityTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<PolicyCase> &info) {
        return info.param.name;
    });

TEST(AtomicityStress, ManyCoresOneLine)
{
    // 16 cores hammering one counter with eager atomics: the worst case
    // for cache locking. Strict equality required.
    PolicyCase pc{AtomicPolicy::Eager, false, ContentionDetector::RWDir,
                  "eager"};
    auto sys = makeCounterSystem(pc, 16, 1, false, false);
    sys->run(60);
    sys->drain();
    std::uint64_t total = 0;
    for (CoreId c = 0; c < 16; c++)
        total += sys->core(c).committedAtomics();
    EXPECT_EQ(sys->mem().functional().read64(addrmap::sharedAtomicWord(0)),
              total);
}

TEST(AtomicityStress, MixedPoliciesStayCoherent)
{
    // Different iteration shapes per core via phase shifts plus stores to
    // the counters' lines: exercises lock stalls + forwarded externals.
    PolicyCase pc{AtomicPolicy::RoW, true, ContentionDetector::RWDir,
                  "row"};
    auto sys = makeCounterSystem(pc, 12, 3, true, true);
    sys->run(40);
    sys->drain();
    std::uint64_t total = 0;
    for (CoreId c = 0; c < 12; c++)
        total += sys->core(c).committedAtomics();
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < 3; k++)
        sum += sys->mem().functional().read64(addrmap::sharedAtomicWord(k));
    EXPECT_EQ(sum, total);
}

TEST(TsoOrdering, StoresBecomeVisibleInProgramOrder)
{
    // Core 0 publishes data then sets a flag (classic message passing).
    // Under TSO the flag must never be observed ahead of the data. The
    // simulator writes values at permission-holding instants, so a
    // reordering bug would let the reader observe flag=1, data=0.
    SystemParams sp;
    sp.numCores = 2;
    const Addr data = addrmap::sharedDataLine(0);
    const Addr flag = addrmap::sharedDataLine(1);

    std::vector<std::unique_ptr<InstStream>> streams;
    {
        std::vector<MicroOp> writer;
        MicroOp s1;
        s1.cls = OpClass::Store;
        s1.addr = data;
        s1.value = 1;
        writer.push_back(s1);
        MicroOp s2;
        s2.cls = OpClass::Store;
        s2.addr = flag;
        s2.value = 1;
        s2.endOfIteration = true;
        writer.push_back(s2);
        streams.push_back(std::make_unique<LoopStream>(writer));
    }
    {
        std::vector<MicroOp> reader;
        MicroOp l1;
        l1.cls = OpClass::Load;
        l1.addr = flag;
        reader.push_back(l1);
        MicroOp l2;
        l2.cls = OpClass::Load;
        l2.addr = data;
        l2.src0 = 1; // ordered behind the flag load
        l2.endOfIteration = true;
        reader.push_back(l2);
        streams.push_back(std::make_unique<LoopStream>(reader));
    }
    System sys(sp, std::move(streams));
    sys.run(50);
    sys.drain();
    // Final state: both written.
    EXPECT_EQ(sys.mem().functional().read64(data), 1u);
    EXPECT_EQ(sys.mem().functional().read64(flag), 1u);
}

TEST(Liveness, ContendedRunNeverTripsWatchdog)
{
    // The deadlock watchdog would panic() if forward progress stopped.
    PolicyCase pc{AtomicPolicy::Eager, true, ContentionDetector::RWDir,
                  "eager_fwd"};
    auto sys = makeCounterSystem(pc, 16, 2, true, true);
    EXPECT_NO_THROW(sys->run(50));
}
