/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace rowsim;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c++;
    c++;
    EXPECT_EQ(c.value(), 2u);
    c += 40;
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, Reset)
{
    Counter c;
    c += 7;
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Average, SingleSampleIsMinAndMax)
{
    Average a;
    a.sample(-3.5);
    EXPECT_DOUBLE_EQ(a.min(), -3.5);
    EXPECT_DOUBLE_EQ(a.max(), -3.5);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0, 100, 10);
    h.sample(5);    // bucket 0
    h.sample(95);   // bucket 9
    h.sample(100);  // overflow (hi is exclusive)
    h.sample(-1);   // underflow
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.summary().count(), 4u);
}

TEST(Histogram, RejectsBadBounds)
{
    EXPECT_THROW(Histogram(10, 10, 4), std::logic_error);
    EXPECT_THROW(Histogram(0, 10, 0), std::logic_error);
}

TEST(StatGroup, CountersAreNamedAndPersistent)
{
    StatGroup g("test");
    g.counter("a")++;
    g.counter("a")++;
    g.counter("b") += 5;
    EXPECT_EQ(g.counterValue("a"), 2u);
    EXPECT_EQ(g.counterValue("b"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(StatGroup, AveragesByName)
{
    StatGroup g("test");
    g.average("lat").sample(10);
    g.average("lat").sample(20);
    const Average *a = g.findAverage("lat");
    ASSERT_NE(a, nullptr);
    EXPECT_DOUBLE_EQ(a->mean(), 15.0);
    EXPECT_EQ(g.findAverage("missing"), nullptr);
}

TEST(StatGroup, ResetClearsEverything)
{
    StatGroup g("test");
    g.counter("a") += 3;
    g.average("x").sample(1.0);
    g.reset();
    EXPECT_EQ(g.counterValue("a"), 0u);
    EXPECT_EQ(g.findAverage("x")->count(), 0u);
}
