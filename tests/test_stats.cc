/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace rowsim;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c++;
    c++;
    EXPECT_EQ(c.value(), 2u);
    c += 40;
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, Reset)
{
    Counter c;
    c += 7;
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Average, SingleSampleIsMinAndMax)
{
    Average a;
    a.sample(-3.5);
    EXPECT_DOUBLE_EQ(a.min(), -3.5);
    EXPECT_DOUBLE_EQ(a.max(), -3.5);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0, 100, 10);
    h.sample(5);    // bucket 0
    h.sample(95);   // bucket 9
    h.sample(100);  // overflow (hi is exclusive)
    h.sample(-1);   // underflow
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.summary().count(), 4u);
}

TEST(Histogram, RejectsBadBounds)
{
    EXPECT_THROW(Histogram(10, 10, 4), std::logic_error);
    EXPECT_THROW(Histogram(0, 10, 0), std::logic_error);
}

TEST(Histogram, RoundingNearHiStaysInTopBucket)
{
    // Regression: (v - lo) can round up to exactly (hi - lo) in double
    // arithmetic even though v < hi, making the raw bucket index equal
    // to the bucket count (an out-of-bounds write before the clamp).
    // At lo = -1e16 the spacing between doubles is 2, so -0.001 - lo
    // rounds to exactly 1e16.
    Histogram h(-1e16, 0, 4);
    h.sample(-0.001);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Formula, EvaluatesLazily)
{
    StatGroup g("test");
    g.counter("n") += 4;
    g.formula("rate") = [&g] {
        return static_cast<double>(g.counterValue("n")) / 2.0;
    };
    EXPECT_DOUBLE_EQ(g.formulaValue("rate"), 2.0);
    g.counter("n") += 4; // formulas see the *current* counter values
    EXPECT_DOUBLE_EQ(g.formulaValue("rate"), 4.0);
    EXPECT_DOUBLE_EQ(g.formulaValue("missing"), 0.0);
}

TEST(IntervalStats, DisabledByDefault)
{
    IntervalStats is;
    EXPECT_FALSE(is.enabled());
    is.tick(1000); // no-op
    EXPECT_TRUE(is.sampleCycles().empty());
}

TEST(IntervalStats, SamplesAbsoluteAndDeltaProbes)
{
    IntervalStats is;
    std::uint64_t counter = 0;
    double level = 1.5;
    is.addProbe("count", [&] { return static_cast<double>(counter); },
                /*delta=*/true);
    is.addProbe("level", [&] { return level; });
    is.configure(100);
    ASSERT_TRUE(is.enabled());
    EXPECT_EQ(is.period(), 100u);

    counter = 10;
    is.tick(99); // before the first boundary: nothing
    EXPECT_TRUE(is.sampleCycles().empty());
    is.tick(100);
    counter = 25;
    level = 2.5;
    is.tick(200);

    ASSERT_EQ(is.sampleCycles().size(), 2u);
    EXPECT_EQ(is.sampleCycles()[0], 100u);
    EXPECT_EQ(is.sampleCycles()[1], 200u);
    ASSERT_EQ(is.series().size(), 2u);
    // Delta probe: 10 in the first interval, 15 in the second.
    EXPECT_DOUBLE_EQ(is.series()[0][0], 10.0);
    EXPECT_DOUBLE_EQ(is.series()[0][1], 15.0);
    // Absolute probe: the value at each boundary.
    EXPECT_DOUBLE_EQ(is.series()[1][0], 1.5);
    EXPECT_DOUBLE_EQ(is.series()[1][1], 2.5);
}

TEST(IntervalStats, ResetClearsSeries)
{
    IntervalStats is;
    is.addProbe("x", [] { return 1.0; });
    is.configure(10);
    is.tick(10);
    ASSERT_EQ(is.sampleCycles().size(), 1u);
    is.reset();
    EXPECT_TRUE(is.sampleCycles().empty());
    EXPECT_TRUE(is.series()[0].empty());
}

TEST(StatGroup, CountersAreNamedAndPersistent)
{
    StatGroup g("test");
    g.counter("a")++;
    g.counter("a")++;
    g.counter("b") += 5;
    EXPECT_EQ(g.counterValue("a"), 2u);
    EXPECT_EQ(g.counterValue("b"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(StatGroup, AveragesByName)
{
    StatGroup g("test");
    g.average("lat").sample(10);
    g.average("lat").sample(20);
    const Average *a = g.findAverage("lat");
    ASSERT_NE(a, nullptr);
    EXPECT_DOUBLE_EQ(a->mean(), 15.0);
    EXPECT_EQ(g.findAverage("missing"), nullptr);
}

TEST(StatGroup, ResetClearsEverything)
{
    StatGroup g("test");
    g.counter("a") += 3;
    g.average("x").sample(1.0);
    g.reset();
    EXPECT_EQ(g.counterValue("a"), 0u);
    EXPECT_EQ(g.findAverage("x")->count(), 0u);
}
