/**
 * @file
 * Unit tests for the Atomic Queue (Free Atomics structure + RoW fields).
 */

#include <gtest/gtest.h>

#include "cpu/atomic_queue.hh"

using namespace rowsim;

TEST(AtomicQueue, FifoAllocationOrder)
{
    AtomicQueue aq(4);
    EXPECT_TRUE(aq.empty());
    unsigned a = aq.allocate(1, 0x400, 10);
    unsigned b = aq.allocate(2, 0x404, 11);
    EXPECT_EQ(aq.size(), 2u);
    EXPECT_EQ(aq.head().seq, 1u);
    EXPECT_EQ(aq.entry(a).dispatchCycle, 10u);
    EXPECT_EQ(aq.entry(b).pc, 0x404u);
}

TEST(AtomicQueue, UnlockMustBeInOrder)
{
    AtomicQueue aq(4);
    aq.allocate(1, 0x400, 0);
    aq.allocate(2, 0x404, 0);
    EXPECT_THROW(aq.freeHead(2), std::logic_error);
    aq.freeHead(1);
    aq.freeHead(2);
    EXPECT_TRUE(aq.empty());
}

TEST(AtomicQueue, FullDetection)
{
    AtomicQueue aq(2);
    aq.allocate(1, 0, 0);
    aq.allocate(2, 0, 0);
    EXPECT_TRUE(aq.full());
    EXPECT_THROW(aq.allocate(3, 0, 0), std::logic_error);
}

TEST(AtomicQueue, LineLockedSnoop)
{
    AtomicQueue aq(4);
    unsigned i = aq.allocate(1, 0x400, 0);
    aq.entry(i).addr = 0x1008; // within line 0x1000
    EXPECT_FALSE(aq.lineLocked(0x1000));
    aq.entry(i).locked = true;
    EXPECT_TRUE(aq.lineLocked(0x1000));
    EXPECT_TRUE(aq.lineLocked(0x1038)); // any offset in the line
    EXPECT_FALSE(aq.lineLocked(0x1040)); // next line
}

TEST(AtomicQueue, ForEachMatchingFiltersByLine)
{
    AtomicQueue aq(4);
    unsigned a = aq.allocate(1, 0, 0);
    unsigned b = aq.allocate(2, 0, 0);
    unsigned c = aq.allocate(3, 0, 0);
    aq.entry(a).addr = 0x1000;
    aq.entry(b).addr = 0x2000;
    aq.entry(c).addr = invalidAddr; // address not computed yet
    int hits = 0;
    aq.forEachMatching(0x1000, [&](AqEntry &e) {
        hits++;
        e.contended = true;
    });
    EXPECT_EQ(hits, 1);
    EXPECT_TRUE(aq.entry(a).contended);
    EXPECT_FALSE(aq.entry(b).contended);
}

TEST(AtomicQueue, OlderAllLockedGatesLockOrder)
{
    AtomicQueue aq(4);
    unsigned a = aq.allocate(1, 0, 0);
    aq.allocate(2, 0, 0);
    EXPECT_TRUE(aq.olderAllLocked(1));  // nothing older
    EXPECT_FALSE(aq.olderAllLocked(2)); // 1 not locked yet
    aq.entry(a).locked = true;
    EXPECT_TRUE(aq.olderAllLocked(2));
}

TEST(AtomicQueue, FreedEntriesDoNotBlockLockOrder)
{
    AtomicQueue aq(4);
    unsigned a = aq.allocate(1, 0, 0);
    aq.allocate(2, 0, 0);
    aq.entry(a).locked = true;
    aq.entry(a).locked = false; // unlocking path clears before free
    aq.freeHead(1);
    EXPECT_TRUE(aq.olderAllLocked(2));
}

TEST(AtomicQueue, FindBySeq)
{
    AtomicQueue aq(4);
    aq.allocate(7, 0, 0);
    aq.allocate(9, 0, 0);
    EXPECT_GE(aq.find(9), 0);
    EXPECT_EQ(aq.find(8), -1);
}

TEST(AtomicQueue, WraparoundReuse)
{
    AtomicQueue aq(2);
    aq.allocate(1, 0, 0);
    aq.allocate(2, 0, 0);
    aq.freeHead(1);
    unsigned c = aq.allocate(3, 0x777, 5);
    EXPECT_EQ(aq.entry(c).pc, 0x777u);
    EXPECT_EQ(aq.head().seq, 2u);
}

TEST(AtomicQueue, RowStorageMatchesPaper)
{
    // §IV-F: 16 entries x (1 + 1 + 14) bits = 256 bits.
    AtomicQueue aq(16);
    EXPECT_EQ(aq.rowStorageBits(), 256u);
}

TEST(AtomicQueue, AllocationResetsRowFields)
{
    AtomicQueue aq(1); // single slot: reuse is immediate
    unsigned i = aq.allocate(1, 0, 0);
    aq.entry(i).contended = true;
    aq.entry(i).onlyCalcAddr = true;
    aq.entry(i).addr = 0x1234;
    aq.freeHead(1);
    unsigned j = aq.allocate(2, 0, 0);
    EXPECT_EQ(i, j); // same slot reused
    EXPECT_FALSE(aq.entry(j).contended);
    EXPECT_FALSE(aq.entry(j).onlyCalcAddr);
    EXPECT_EQ(aq.entry(j).addr, invalidAddr);
}
