/**
 * @file
 * Result-store tests: codec round trips, cold→warm byte identity
 * through the experiment layer, every damage mode (torn write, bit
 * flip, truncation, misplaced entry, schema skew) detected and
 * recovered without ever being fatal, concurrent writers, key
 * sensitivity, and the job-suffixed crash-dump sinks.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/io.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/resultstore.hh"
#include "sim/snapshot.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

/** Fresh per-test store directory under /tmp. */
std::string
testDir(const char *name)
{
    const std::string dir = strprintf("/tmp/rowsim-resultstore-%ld-%s",
                                      static_cast<long>(::getpid()), name);
    std::filesystem::remove_all(dir);
    return dir;
}

/** A RunResult with every field populated (no simulation needed). */
RunResult
sampleResult()
{
    RunResult r;
    r.workload = "pc";
    r.config = "eager";
    r.cycles = 123456;
    r.instructions = 789012;
    r.atomicsCommitted = 345;
    r.atomicsPer10k = 4.375;
    r.atomicsUnlocked = 340;
    r.detectedContended = 12;
    r.oracleContended = 17;
    r.contendedPct = 5.0;
    r.missLatency = 41.25;
    r.dispatchToIssue = 3.5;
    r.issueToLock = 88.875;
    r.lockToUnlock = 12.125;
    r.dispatchToIssueP99 = 17.0;
    r.issueToLockP50 = 60.0;
    r.lockToUnlockP90 = 44.0;
    r.olderUnexecuted = 2.25;
    r.youngerStarted = 6.5;
    r.predAccuracy = 93.75;
    r.atomicsForwarded = 7;
    r.atomicsPromoted = 3;
    r.forcedUnlocks = 1;
    r.eagerIssued = 200;
    r.lazyIssued = 140;
    r.statsJson = "{\"sim\":{\"cycles\":123456}}\n";
    r.profileJson = "{\"cpi\":[]}";
    r.spanJson = "{\"count\":0}";
    r.tsJson = "{\"period\": 2048, \"metrics\": {}}";
    r.convergeMetric = "instructions";
    r.convergeTarget = 0.02;
    r.convergeConfidence = 0.95;
    r.convergeAchieved = 0.0175;
    r.converged = true;
    return r;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.atomicsCommitted, b.atomicsCommitted);
    EXPECT_EQ(a.atomicsPer10k, b.atomicsPer10k);
    EXPECT_EQ(a.missLatency, b.missLatency);
    EXPECT_EQ(a.issueToLock, b.issueToLock);
    EXPECT_EQ(a.issueToLockP50, b.issueToLockP50);
    EXPECT_EQ(a.predAccuracy, b.predAccuracy);
    EXPECT_EQ(a.eagerIssued, b.eagerIssued);
    EXPECT_EQ(a.lazyIssued, b.lazyIssued);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.profileJson, b.profileJson);
    EXPECT_EQ(a.spanJson, b.spanJson);
    EXPECT_EQ(a.tsJson, b.tsJson);
    EXPECT_EQ(a.convergeMetric, b.convergeMetric);
    EXPECT_EQ(a.convergeTarget, b.convergeTarget);
    EXPECT_EQ(a.convergeConfidence, b.convergeConfidence);
    EXPECT_EQ(a.convergeAchieved, b.convergeAchieved);
    EXPECT_EQ(a.converged, b.converged);
}

ResultKey
sampleKey(std::uint64_t quota = 100)
{
    return ResultStore::keyFor(makeParams(eagerConfig(), 8, 1), "pc",
                               "eager", quota);
}

} // namespace

TEST(ResultCodec, RoundTripsEveryField)
{
    const RunResult r = sampleResult();
    expectSameResult(r, decodeResult(encodeResult(r)));

    RunResult failed = sampleResult();
    failed.status = RunStatus::TimedOut;
    failed.error = "exceeded 500 ms \"budget\"";
    failed.attempts = 3;
    expectSameResult(failed, decodeResult(encodeResult(failed)));
}

TEST(ResultCodec, RejectsDamage)
{
    std::vector<std::uint8_t> payload = encodeResult(sampleResult());
    EXPECT_THROW(decodeResult(std::vector<std::uint8_t>(
                     payload.begin(), payload.begin() + 10)),
                 SnapshotError);
    std::vector<std::uint8_t> trailing = payload;
    trailing.push_back(0);
    EXPECT_THROW(decodeResult(trailing), SnapshotError);
}

TEST(ResultStoreSuite, StoreLoadHitAndCounters)
{
    ResultStore store(testDir("hit"));
    const ResultKey key = sampleKey();
    RunResult out;
    EXPECT_FALSE(store.load(key, out)); // empty store: clean miss
    EXPECT_EQ(store.misses(), 1u);

    store.store(key, sampleResult());
    EXPECT_EQ(store.stores(), 1u);
    ASSERT_TRUE(store.load(key, out));
    expectSameResult(sampleResult(), out);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.quarantined(), 0u);
}

TEST(ResultStoreSuite, KeyReactsToEveryInput)
{
    const SystemParams base = makeParams(eagerConfig(), 8, 1);
    const ResultKey k = ResultStore::keyFor(base, "pc", "eager", 100);
    EXPECT_NE(k, ResultStore::keyFor(base, "cq", "eager", 100));
    EXPECT_NE(k, ResultStore::keyFor(base, "pc", "lazy-label", 100));
    EXPECT_NE(k, ResultStore::keyFor(base, "pc", "eager", 101));
    EXPECT_NE(k, ResultStore::keyFor(makeParams(eagerConfig(), 16, 1),
                                     "pc", "eager", 100));
    EXPECT_NE(k, ResultStore::keyFor(makeParams(eagerConfig(), 8, 2),
                                     "pc", "eager", 100));
    EXPECT_NE(k, ResultStore::keyFor(makeParams(lazyConfig(), 8, 1), "pc",
                                     "eager", 100));
    // The profiler mask shapes the RunResult (pcs fills percentile
    // fields), so it must be part of the key even though it does not
    // change the simulated trajectory.
    ExpConfig prof = eagerConfig();
    prof.profile = "pcs";
    EXPECT_NE(k, ResultStore::keyFor(makeParams(prof, 8, 1), "pc",
                                     "eager", 100));
    // The time-series engine shapes the RunResult (tsJson), and a
    // convergence spec changes the simulated stop cycle itself — both
    // must key the store.
    ExpConfig ts = eagerConfig();
    ts.timeseries = "on";
    const ResultKey kTs =
        ResultStore::keyFor(makeParams(ts, 8, 1), "pc", "eager", 100);
    EXPECT_NE(k, kTs);
    ExpConfig conv = eagerConfig();
    conv.converge = "instructions:0.05";
    const ResultKey kConv =
        ResultStore::keyFor(makeParams(conv, 8, 1), "pc", "eager", 100);
    EXPECT_NE(k, kConv);
    EXPECT_NE(kTs, kConv);
    // Every component of the spec is significant: metric, bound,
    // confidence.
    conv.converge = "atomics:0.05";
    EXPECT_NE(kConv, ResultStore::keyFor(makeParams(conv, 8, 1), "pc",
                                         "eager", 100));
    conv.converge = "instructions:0.01";
    EXPECT_NE(kConv, ResultStore::keyFor(makeParams(conv, 8, 1), "pc",
                                         "eager", 100));
    conv.converge = "instructions:0.05:0.99";
    EXPECT_NE(kConv, ResultStore::keyFor(makeParams(conv, 8, 1), "pc",
                                         "eager", 100));
    // Deterministic: same inputs, same key.
    EXPECT_EQ(k, ResultStore::keyFor(makeParams(eagerConfig(), 8, 1),
                                     "pc", "eager", 100));
}

TEST(ResultStoreSuite, BitFlipIsQuarantinedThenRecomputed)
{
    ResultStore store(testDir("bitflip"));
    const ResultKey key = sampleKey();
    store.store(key, sampleResult());

    const std::string path = store.pathFor(key);
    std::vector<std::uint8_t> raw;
    ASSERT_TRUE(readFileBytes(path, raw));
    raw[raw.size() / 2] ^= 0x40; // flip one payload bit
    atomicWriteFile(path, raw);

    RunResult out;
    EXPECT_FALSE(store.load(key, out));
    EXPECT_EQ(store.quarantined(), 1u);
    EXPECT_TRUE(std::filesystem::exists(path + ".quarantined"));
    EXPECT_FALSE(std::filesystem::exists(path));

    // Recompute path: a fresh store() fills the slot again, and the
    // reread is byte-identical to the original.
    store.store(key, sampleResult());
    ASSERT_TRUE(store.load(key, out));
    expectSameResult(sampleResult(), out);
}

TEST(ResultStoreSuite, TruncationIsQuarantined)
{
    ResultStore store(testDir("trunc"));
    const ResultKey key = sampleKey();
    store.store(key, sampleResult());

    const std::string path = store.pathFor(key);
    std::vector<std::uint8_t> raw;
    ASSERT_TRUE(readFileBytes(path, raw));

    for (const std::size_t keep :
         {std::size_t{6}, std::size_t{40}, raw.size() - 7}) {
        atomicWriteFile(path, std::vector<std::uint8_t>(
                                  raw.begin(),
                                  raw.begin() +
                                      static_cast<std::ptrdiff_t>(keep)));
        RunResult out;
        EXPECT_FALSE(store.load(key, out)) << keep;
        std::filesystem::remove(path + ".quarantined");
    }
    EXPECT_EQ(store.quarantined(), 3u);
}

TEST(ResultStoreSuite, MisplacedEntryIsQuarantined)
{
    ResultStore store(testDir("misplaced"));
    const ResultKey key = sampleKey();
    const ResultKey other = sampleKey(999);
    store.store(key, sampleResult());

    // Simulate a mis-renamed entry: the bytes are valid, but they sit
    // under another key's path. The embedded key catches it.
    std::vector<std::uint8_t> raw;
    ASSERT_TRUE(readFileBytes(store.pathFor(key), raw));
    atomicWriteFile(store.pathFor(other), raw);

    RunResult out;
    EXPECT_FALSE(store.load(other, out));
    EXPECT_EQ(store.quarantined(), 1u);
    ASSERT_TRUE(store.load(key, out)); // the rightful entry is untouched
}

TEST(ResultStoreSuite, SchemaVersionSkewIsCleanMissNotQuarantine)
{
    ResultStore store(testDir("schema"));
    const ResultKey key = sampleKey();
    store.store(key, sampleResult());

    // Patch the schema-version field (offset 8, little-endian u32).
    const std::string path = store.pathFor(key);
    std::vector<std::uint8_t> raw;
    ASSERT_TRUE(readFileBytes(path, raw));
    raw[8] = static_cast<std::uint8_t>(resultSchemaVersion + 1);
    atomicWriteFile(path, raw);

    RunResult out;
    EXPECT_FALSE(store.load(key, out));
    EXPECT_EQ(store.quarantined(), 0u); // stale, not damaged
    EXPECT_TRUE(std::filesystem::exists(path)); // left for inspection

    // A current-schema store() overwrites the stale slot in place.
    store.store(key, sampleResult());
    ASSERT_TRUE(store.load(key, out));
}

TEST(ResultStoreSuite, TornWriteLeavesNoPartialEntry)
{
    ResultStore store(testDir("torn"));
    const ResultKey key = sampleKey();

    // Kill a writer mid-write (in a forked child, as the process sweep
    // would): the entry path must stay absent — all-or-nothing.
    ::fflush(nullptr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        setAtomicWriteKillAfter(24);
        ResultStore child(store.dir());
        child.store(key, sampleResult()); // _Exit(9)s inside the write
        std::_Exit(0);                    // not reached
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), 9);

    EXPECT_FALSE(std::filesystem::exists(store.pathFor(key)));
    RunResult out;
    EXPECT_FALSE(store.load(key, out)); // clean miss, nothing quarantined
    EXPECT_EQ(store.quarantined(), 0u);

    // The slot still works after the torn write.
    store.store(key, sampleResult());
    EXPECT_TRUE(store.load(key, out));
}

TEST(ResultStoreSuite, ConcurrentWritersOnOneKeyStaySafe)
{
    const std::string dir = testDir("race");
    const ResultKey key = sampleKey();
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < 4; t++) {
        writers.emplace_back([&dir, &key]() {
            ResultStore s(dir);
            for (unsigned i = 0; i < 8; i++)
                s.store(key, sampleResult());
        });
    }
    for (auto &t : writers)
        t.join();

    ResultStore store(dir);
    RunResult out;
    ASSERT_TRUE(store.load(key, out));
    expectSameResult(sampleResult(), out);
    // No stray temporaries survive the race.
    unsigned leftovers = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        if (e.path().string().find(".tmp.") != std::string::npos)
            leftovers++;
    }
    EXPECT_EQ(leftovers, 0u);
}

TEST(ResultStoreSuite, FromEnvGating)
{
    ::unsetenv("ROWSIM_RESULTS");
    EXPECT_EQ(ResultStore::fromEnv(), nullptr);
    ::setenv("ROWSIM_RESULTS", "off", 1);
    EXPECT_EQ(ResultStore::fromEnv(), nullptr);
    ::setenv("ROWSIM_RESULTS", "on", 1);
    ::setenv("ROWSIM_RESULTS_DIR", "/tmp/rowsim-res-env", 1);
    auto store = ResultStore::fromEnv();
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->dir(), "/tmp/rowsim-res-env");
    ::unsetenv("ROWSIM_RESULTS_DIR");
    ASSERT_NE(ResultStore::fromEnv(), nullptr);
    EXPECT_EQ(ResultStore::fromEnv()->dir(), "rowsim-results");
    ::setenv("ROWSIM_RESULTS", "sideways", 1);
    EXPECT_THROW(ResultStore::fromEnv(), std::runtime_error);
    ::unsetenv("ROWSIM_RESULTS");
}

TEST(ResultStoreSuite, WarmRerunByteIdenticalThroughExperimentLayer)
{
    const std::string dir = testDir("warm");
    ::setenv("ROWSIM_RESULTS", "on", 1);
    ::setenv("ROWSIM_RESULTS_DIR", dir.c_str(), 1);

    const RunResult cold =
        runExperiment("pc", eagerConfig(), 8, 30, 1, true);
    EXPECT_FALSE(cold.fromCache);
    ASSERT_FALSE(cold.statsJson.empty());

    const RunResult warm =
        runExperiment("pc", eagerConfig(), 8, 30, 1, true);
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(warm.cycles, cold.cycles);
    EXPECT_EQ(warm.statsJson, cold.statsJson); // byte-identical
    expectSameResult(cold, warm);

    // A caller that does not want statsJson gets none, even though the
    // entry carries it — warm results must match what a cold run with
    // the same arguments would have returned.
    const RunResult lean =
        runExperiment("pc", eagerConfig(), 8, 30, 1, false);
    EXPECT_TRUE(lean.fromCache);
    EXPECT_TRUE(lean.statsJson.empty());

    // Different quota: a different key, recomputed.
    const RunResult other =
        runExperiment("pc", eagerConfig(), 8, 31, 1, false);
    EXPECT_FALSE(other.fromCache);

    ::unsetenv("ROWSIM_RESULTS");
    ::unsetenv("ROWSIM_RESULTS_DIR");
}

TEST(ResultStoreSuite, StatsOnlyEntryUpgradedWhenStatsWanted)
{
    const std::string dir = testDir("upgrade");
    ::setenv("ROWSIM_RESULTS", "on", 1);
    ::setenv("ROWSIM_RESULTS_DIR", dir.c_str(), 1);

    // Cold run without stats capture stores a lean entry...
    const RunResult lean =
        runExperiment("pc", eagerConfig(), 8, 30, 1, false);
    EXPECT_FALSE(lean.fromCache);

    // ...which cannot serve a capture_stats caller: that run recomputes
    // and upgrades the entry in place.
    const RunResult full =
        runExperiment("pc", eagerConfig(), 8, 30, 1, true);
    EXPECT_FALSE(full.fromCache);
    ASSERT_FALSE(full.statsJson.empty());

    const RunResult warm =
        runExperiment("pc", eagerConfig(), 8, 30, 1, true);
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(warm.statsJson, full.statsJson);

    ::unsetenv("ROWSIM_RESULTS");
    ::unsetenv("ROWSIM_RESULTS_DIR");
}

TEST(ResultStoreSuite, TracedRunsBypassTheStore)
{
    const std::string dir = testDir("bypass");
    const std::string sink = dir + "-trace.log";
    ::setenv("ROWSIM_RESULTS", "on", 1);
    ::setenv("ROWSIM_RESULTS_DIR", dir.c_str(), 1);
    ::setenv("ROWSIM_TRACE", "atomic", 1);
    ::setenv("ROWSIM_TRACE_FILE", sink.c_str(), 1);
    Trace::scopeToJob(""); // re-parse the trace env on this thread

    // A traced run must neither store (its entry would shadow the
    // trace side effects)...
    const RunResult first = runExperiment("pc", eagerConfig(), 8, 30, 1);
    EXPECT_FALSE(first.fromCache);
    EXPECT_FALSE(std::filesystem::exists(dir)); // no entry was written

    // ...nor load: even against a populated store, a traced rerun
    // simulates so the trace actually happens.
    ::unsetenv("ROWSIM_TRACE");
    ::unsetenv("ROWSIM_TRACE_FILE");
    Trace::scopeToJob("");
    const RunResult stored = runExperiment("pc", eagerConfig(), 8, 30, 1);
    EXPECT_FALSE(stored.fromCache);
    EXPECT_TRUE(std::filesystem::exists(dir));
    ::setenv("ROWSIM_TRACE", "atomic", 1);
    ::setenv("ROWSIM_TRACE_FILE", sink.c_str(), 1);
    Trace::scopeToJob("");
    const RunResult traced = runExperiment("pc", eagerConfig(), 8, 30, 1);
    EXPECT_FALSE(traced.fromCache);
    EXPECT_EQ(traced.cycles, stored.cycles);

    ::unsetenv("ROWSIM_TRACE");
    ::unsetenv("ROWSIM_TRACE_FILE");
    ::unsetenv("ROWSIM_RESULTS");
    ::unsetenv("ROWSIM_RESULTS_DIR");
    Trace::scopeToJob("");
    std::filesystem::remove(sink);
}

TEST(ResultStoreSuite, HeartbeatRunsBypassTheStore)
{
    // The heartbeat is live telemetry: a stored result replayed from
    // disk would emit no progress events, so — exactly like
    // ROWSIM_TRACE — an instrumented run neither loads nor stores.
    const std::string dir = testDir("hb-bypass");
    const std::string sink = dir + "-hb.jsonl";
    ::setenv("ROWSIM_RESULTS", "on", 1);
    ::setenv("ROWSIM_RESULTS_DIR", dir.c_str(), 1);
    ::setenv("ROWSIM_HEARTBEAT", sink.c_str(), 1);

    const RunResult first = runExperiment("pc", eagerConfig(), 8, 30, 1);
    EXPECT_FALSE(first.fromCache);
    EXPECT_FALSE(std::filesystem::exists(dir)); // no entry was written

    // Populate the store without the heartbeat, then rerun with it:
    // the run must simulate (so events flow), not serve the cache.
    ::unsetenv("ROWSIM_HEARTBEAT");
    const RunResult stored = runExperiment("pc", eagerConfig(), 8, 30, 1);
    EXPECT_FALSE(stored.fromCache);
    EXPECT_TRUE(std::filesystem::exists(dir));
    ::setenv("ROWSIM_HEARTBEAT", sink.c_str(), 1);
    const RunResult live = runExperiment("pc", eagerConfig(), 8, 30, 1);
    EXPECT_FALSE(live.fromCache);
    EXPECT_EQ(live.cycles, stored.cycles);

    ::unsetenv("ROWSIM_HEARTBEAT");
    ::unsetenv("ROWSIM_RESULTS");
    ::unsetenv("ROWSIM_RESULTS_DIR");
    std::filesystem::remove(sink);
}

TEST(ResultStoreSuite, ConvergeMissesThePlainEntryAndCachesItsOwn)
{
    const std::string dir = testDir("converge");
    ::setenv("ROWSIM_RESULTS", "on", 1);
    ::setenv("ROWSIM_RESULTS_DIR", dir.c_str(), 1);
    ::setenv("ROWSIM_STATS_INTERVAL", "1024", 1);

    // Warm the plain entry.
    const RunResult plain =
        runExperiment("pc", eagerConfig(), 8, 4000, 1, false);
    EXPECT_FALSE(plain.fromCache);

    // A convergence-bounded run stops at a different cycle, so serving
    // the plain entry would be wrong: it must miss, recompute, and
    // store under its own key.
    ExpConfig conv = eagerConfig();
    conv.converge = "instructions:0.2";
    const RunResult cold =
        runExperiment("pc", conv, 8, 4000, 1, false);
    EXPECT_FALSE(cold.fromCache);
    ASSERT_TRUE(cold.converged);
    EXPECT_LT(cold.cycles, plain.cycles);

    const RunResult warm = runExperiment("pc", conv, 8, 4000, 1, false);
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(warm.cycles, cold.cycles);
    EXPECT_EQ(warm.tsJson, cold.tsJson);
    EXPECT_EQ(warm.converged, cold.converged);
    EXPECT_EQ(warm.convergeAchieved, cold.convergeAchieved);

    // And the plain entry still serves plain reruns.
    const RunResult plainWarm =
        runExperiment("pc", eagerConfig(), 8, 4000, 1, false);
    EXPECT_TRUE(plainWarm.fromCache);
    EXPECT_EQ(plainWarm.cycles, plain.cycles);

    ::unsetenv("ROWSIM_STATS_INTERVAL");
    ::unsetenv("ROWSIM_RESULTS");
    ::unsetenv("ROWSIM_RESULTS_DIR");
}

TEST(ResultStoreSuite, CrashDumpsCarryTheJobSuffix)
{
    const std::string base = strprintf("/tmp/rowsim-crash-%ld.json",
                                       static_cast<long>(::getpid()));
    const std::string suffixed = strprintf("/tmp/rowsim-crash-%ld.j7.json",
                                           static_cast<long>(::getpid()));
    std::filesystem::remove(base);
    std::filesystem::remove(suffixed);
    ::setenv("ROWSIM_CRASH_JSON", base.c_str(), 1);

    Trace::scopeToJob("j7");
    SystemParams sp = makeParams(eagerConfig(), 2, 1);
    System sys(sp, makeStreams(profileFor("pc"), 2, 1));
    sys.dumpCrashDiagnostics("suffix test");
    Trace::scopeToJob("");
    ::unsetenv("ROWSIM_CRASH_JSON");

    // The dump landed at the job-suffixed path, not the shared one.
    EXPECT_TRUE(std::filesystem::exists(suffixed));
    EXPECT_FALSE(std::filesystem::exists(base));
    std::filesystem::remove(suffixed);
}
