/**
 * @file
 * Unit tests for the tournament branch predictor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "cpu/branch.hh"

using namespace rowsim;

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    int correct = 0;
    for (int i = 0; i < 100; i++)
        correct += bp.update(0x400, true);
    EXPECT_GT(correct, 95);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    // Counters initialise weakly-not-taken, so this should be near
    // perfect from the start.
    int correct = 0;
    for (int i = 0; i < 100; i++)
        correct += bp.update(0x400, false);
    EXPECT_EQ(correct, 100);
}

TEST(BranchPredictor, GshareLearnsAlternatingPattern)
{
    BranchPredictor bp;
    int correct_late = 0;
    for (int i = 0; i < 400; i++) {
        bool taken = (i % 2) == 0;
        bool ok = bp.update(0x800, taken);
        if (i >= 200)
            correct_late += ok;
    }
    // A bimodal-only predictor would sit near 50%; gshare with history
    // should nail the alternation once warmed up.
    EXPECT_GT(correct_late, 180);
}

TEST(BranchPredictor, LearnsShortPeriodicPattern)
{
    BranchPredictor bp;
    const bool pattern[] = {true, true, false, true};
    int correct_late = 0;
    for (int i = 0; i < 800; i++) {
        bool taken = pattern[i % 4];
        bool ok = bp.update(0xC00, taken);
        if (i >= 400)
            correct_late += ok;
    }
    EXPECT_GT(correct_late, 360);
}

TEST(BranchPredictor, RandomBranchesNearFiftyPercent)
{
    BranchPredictor bp;
    Rng rng(11);
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; i++)
        correct += bp.update(0x1000, rng.chance(0.5));
    EXPECT_GT(correct, n / 2 - n / 8);
    EXPECT_LT(correct, n / 2 + n / 8);
}

TEST(BranchPredictor, IndependentPcsDoNotDestroyEachOther)
{
    BranchPredictor bp;
    // Train two PCs with opposite biases; both should be predictable.
    int correct = 0;
    for (int i = 0; i < 400; i++) {
        correct += bp.update(0x4000, true);
        correct += bp.update(0x8000, false);
    }
    EXPECT_GT(correct, 700);
}

TEST(BranchPredictor, MispredictStatsRecorded)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; i++)
        bp.update(0x400, true);
    EXPECT_EQ(bp.stats().counterValue("lookups"), 10u);
    EXPECT_GT(bp.stats().counterValue("lookups"),
              bp.stats().counterValue("mispredicts"));
}

TEST(BranchPredictor, PredictIsSideEffectFree)
{
    BranchPredictor bp;
    bool first = bp.predict(0x400);
    for (int i = 0; i < 50; i++)
        EXPECT_EQ(bp.predict(0x400), first);
}
