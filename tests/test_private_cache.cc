/**
 * @file
 * Tests for the private cache unit wired to real directory banks over a
 * real network, with a scriptable MemClient standing in for the core:
 * hit/miss latencies, upgrades, evictions, cache locking (stalled
 * externals), and the lock-steal timeout.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/memsystem.hh"

using namespace rowsim;

namespace
{

struct ScriptClient : MemClient
{
    std::vector<MemResult> done;
    std::vector<std::pair<std::uint64_t, FillSource>> atomicReady;
    std::set<Addr> lockedLines;
    std::vector<Addr> snoops;
    bool allowForceUnlock = false;
    int forceUnlocks = 0;

    void
    accessDone(const MemResult &r) override
    {
        done.push_back(r);
    }
    void
    atomicLineReady(std::uint64_t token, Addr line, FillSource source,
                    Cycle, bool, Cycle) override
    {
        atomicReady.emplace_back(token, source);
        lockedLines.insert(lineAlign(line));
    }
    bool
    lineLocked(Addr line) const override
    {
        return lockedLines.count(lineAlign(line)) > 0;
    }
    void
    externalRequestSnoop(Addr line, Cycle) override
    {
        snoops.push_back(lineAlign(line));
    }
    bool
    tryForceUnlock(Addr line, Cycle) override
    {
        if (!allowForceUnlock)
            return false;
        forceUnlocks++;
        lockedLines.erase(lineAlign(line));
        return true;
    }
};

} // namespace

class PrivateCacheTest : public ::testing::Test
{
  protected:
    PrivateCacheTest()
    {
        params.numCores = 2;
        mem = std::make_unique<MemSystem>(params);
        mem->cache(0).setClient(&client0);
        mem->cache(1).setClient(&client1);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle end = now + cycles; now < end;) {
            now++;
            mem->tick(now);
        }
    }

    MemAccess
    load(Addr a, std::uint64_t token)
    {
        MemAccess m;
        m.addr = a;
        m.token = token;
        return m;
    }

    MemAccess
    store(Addr a, std::uint64_t v, std::uint64_t token)
    {
        MemAccess m;
        m.addr = a;
        m.token = token;
        m.needExclusive = true;
        m.isWrite = true;
        m.writeValue = v;
        return m;
    }

    MemAccess
    atomic(Addr a, std::uint64_t token)
    {
        MemAccess m;
        m.addr = a;
        m.token = token;
        m.needExclusive = true;
        m.isAtomic = true;
        return m;
    }

    SystemParams params;
    std::unique_ptr<MemSystem> mem;
    ScriptClient client0, client1;
    Cycle now = 0;
};

TEST_F(PrivateCacheTest, ColdLoadMissesToMemory)
{
    mem->cache(0).access(load(0x10000, 1), now);
    run(600);
    ASSERT_EQ(client0.done.size(), 1u);
    EXPECT_EQ(client0.done[0].source, FillSource::Memory);
    EXPECT_GT(client0.done[0].doneCycle - client0.done[0].requestCycle,
              params.mem.memoryLatency);
    EXPECT_EQ(mem->cache(0).lineState(0x10000), CacheState::Shared);
}

TEST_F(PrivateCacheTest, WarmLoadHitsInL1)
{
    mem->cache(0).access(load(0x10000, 1), now);
    run(600);
    client0.done.clear();
    mem->cache(0).access(load(0x10008, 2), now);
    run(20);
    ASSERT_EQ(client0.done.size(), 1u);
    EXPECT_EQ(client0.done[0].source, FillSource::L1Hit);
    EXPECT_EQ(client0.done[0].doneCycle - client0.done[0].requestCycle,
              params.mem.l1HitLatency);
}

TEST_F(PrivateCacheTest, StoreUpgradesSharedLine)
{
    mem->cache(0).access(load(0x10000, 1), now);
    run(600);
    EXPECT_EQ(mem->cache(0).lineState(0x10000), CacheState::Shared);
    mem->cache(0).access(store(0x10000, 42, 2), now);
    run(600);
    EXPECT_EQ(mem->cache(0).lineState(0x10000), CacheState::Modified);
    EXPECT_EQ(mem->functional().read64(0x10000), 42u);
}

TEST_F(PrivateCacheTest, RemoteDirtyLineForwardedFromOwner)
{
    mem->cache(0).access(store(0x10000, 7, 1), now);
    run(600);
    mem->cache(1).access(load(0x10000, 2), now);
    run(600);
    ASSERT_EQ(client1.done.size(), 1u);
    EXPECT_EQ(client1.done[0].source, FillSource::RemoteCache);
    EXPECT_EQ(client1.done[0].value, 7u);
    // Owner downgraded to Shared by the FwdGetS.
    EXPECT_EQ(mem->cache(0).lineState(0x10000), CacheState::Shared);
}

TEST_F(PrivateCacheTest, RemoteStoreInvalidatesOwner)
{
    mem->cache(0).access(store(0x10000, 7, 1), now);
    run(600);
    mem->cache(1).access(store(0x10000, 9, 2), now);
    run(600);
    EXPECT_EQ(mem->cache(0).lineState(0x10000), CacheState::Invalid);
    EXPECT_EQ(mem->cache(1).lineState(0x10000), CacheState::Modified);
    EXPECT_EQ(mem->functional().read64(0x10000), 9u);
}

TEST_F(PrivateCacheTest, AtomicLocksOnFill)
{
    mem->cache(0).access(atomic(0x10000, 1), now);
    run(600);
    ASSERT_EQ(client0.atomicReady.size(), 1u);
    EXPECT_TRUE(client0.lineLocked(0x10000));
    EXPECT_EQ(mem->cache(0).lineState(0x10000), CacheState::Modified);
}

TEST_F(PrivateCacheTest, LockedLineStallsExternalRequest)
{
    mem->cache(0).access(atomic(0x10000, 1), now);
    run(600);
    ASSERT_TRUE(client0.lineLocked(0x10000));

    // Core 1 wants the locked line: the forward must stall at core 0.
    mem->cache(1).access(store(0x10000, 5, 2), now);
    run(1000);
    EXPECT_TRUE(client1.done.empty());
    EXPECT_FALSE(client0.snoops.empty()); // RW/EW hook fired
    EXPECT_GT(mem->cache(0).stats().counterValue("lockStalledExternals"),
              0u);

    // Unlock: the stalled forward is serviced and core 1 completes.
    client0.lockedLines.clear();
    mem->cache(0).unlockNotify(0x10000, now);
    run(600);
    EXPECT_EQ(client1.done.size(), 1u);
    EXPECT_EQ(mem->cache(1).lineState(0x10000), CacheState::Modified);
}

TEST_F(PrivateCacheTest, LockStealAfterTimeout)
{
    mem->cache(0).lockStealThreshold = 200;
    mem->cache(0).access(atomic(0x10000, 1), now);
    run(600);
    client0.allowForceUnlock = true;
    mem->cache(1).access(store(0x10000, 5, 2), now);
    run(2000);
    EXPECT_GT(client0.forceUnlocks, 0);
    EXPECT_EQ(client1.done.size(), 1u);
    EXPECT_GT(mem->cache(0).stats().counterValue("lockSteals"), 0u);
}

TEST_F(PrivateCacheTest, MshrCoalescesSameLine)
{
    mem->cache(0).access(load(0x10000, 1), now);
    mem->cache(0).access(load(0x10008, 2), now);
    run(600);
    EXPECT_EQ(client0.done.size(), 2u);
    EXPECT_EQ(mem->cache(0).stats().counterValue("mshrCoalesced"), 1u);
    // Only one demand request went out (plus possibly a prefetch).
    EXPECT_LE(mem->cache(0).stats().counterValue("demandRequests"), 1u);
}

TEST_F(PrivateCacheTest, GetSFillUpgradesForExclusiveWaiter)
{
    // A load and a store to the same cold line: the GetS fill satisfies
    // the load; the store triggers a follow-up GetX.
    mem->cache(0).access(load(0x10000, 1), now);
    mem->cache(0).access(store(0x10000, 3, 2), now);
    run(1200);
    EXPECT_EQ(client0.done.size(), 2u);
    EXPECT_EQ(mem->cache(0).lineState(0x10000), CacheState::Modified);
    EXPECT_EQ(mem->functional().read64(0x10000), 3u);
}

TEST_F(PrivateCacheTest, DirtyEvictionWritesBack)
{
    // Fill way more M lines into one set than its associativity.
    const unsigned sets = params.mem.l2Sets;
    for (unsigned i = 0; i < params.mem.l2Ways + 2; i++) {
        Addr a = 0x10000 + static_cast<Addr>(i) * sets * lineBytes;
        mem->cache(0).access(store(a, i, 100 + i), now);
        run(600);
    }
    EXPECT_GT(mem->cache(0).stats().counterValue("writebacks"), 0u);
    // Values survive eviction through the functional memory + LLC.
    EXPECT_EQ(mem->functional().read64(0x10000), 0u);
    run(2000);
    EXPECT_TRUE(mem->idle());
}

TEST_F(PrivateCacheTest, PrefetcherFetchesNextLine)
{
    mem->cache(0).access(load(0x10000, 1), now);
    run(800);
    EXPECT_GT(mem->cache(0).stats().counterValue("prefetchRequests"), 0u);
    // The next line is now present without a demand access.
    EXPECT_NE(mem->cache(0).lineState(0x10000 + lineBytes),
              CacheState::Invalid);
}

TEST_F(PrivateCacheTest, SystemQuiescesAfterTraffic)
{
    for (int i = 0; i < 8; i++) {
        mem->cache(0).access(load(0x20000 + i * 0x1000, i), now);
        mem->cache(1).access(store(0x20000 + i * 0x1000, i, 100 + i), now);
        run(50);
    }
    run(3000);
    EXPECT_TRUE(mem->idle());
}
