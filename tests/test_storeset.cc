/**
 * @file
 * Unit tests for the StoreSet memory-dependence predictor.
 */

#include <gtest/gtest.h>

#include "cpu/storeset.hh"

using namespace rowsim;

TEST(StoreSet, NoDependenceInitially)
{
    StoreSet ss;
    EXPECT_EQ(ss.dependence(0x400), 0u);
    EXPECT_EQ(ss.setOf(0x400), StoreSet::invalidSet);
}

TEST(StoreSet, ViolationCreatesSharedSet)
{
    StoreSet ss;
    ss.violation(0x400 /*load*/, 0x800 /*store*/);
    EXPECT_NE(ss.setOf(0x400), StoreSet::invalidSet);
    EXPECT_EQ(ss.setOf(0x400), ss.setOf(0x800));
}

TEST(StoreSet, DependencePointsToLastFetchedStore)
{
    StoreSet ss;
    ss.violation(0x400, 0x800);
    ss.storeFetched(ss.setOf(0x800), 42);
    EXPECT_EQ(ss.dependence(0x400), 42u);
}

TEST(StoreSet, StoreExecutionClearsDependence)
{
    StoreSet ss;
    ss.violation(0x400, 0x800);
    ss.storeFetched(ss.setOf(0x800), 42);
    ss.storeExecuted(ss.setOf(0x800), 42);
    EXPECT_EQ(ss.dependence(0x400), 0u);
}

TEST(StoreSet, YoungerStoreOverwritesLfst)
{
    StoreSet ss;
    ss.violation(0x400, 0x800);
    auto set = ss.setOf(0x800);
    ss.storeFetched(set, 42);
    ss.storeFetched(set, 50);
    EXPECT_EQ(ss.dependence(0x400), 50u);
    // Execution of the OLD store must not clear the newer dependence.
    ss.storeExecuted(set, 42);
    EXPECT_EQ(ss.dependence(0x400), 50u);
}

TEST(StoreSet, MergeKeepsSmallerSetId)
{
    StoreSet ss;
    ss.violation(0x400, 0x800); // set A
    ss.violation(0x404, 0x804); // set B
    auto a = ss.setOf(0x400);
    auto b = ss.setOf(0x404);
    ASSERT_NE(a, b);
    ss.violation(0x400, 0x804); // merge
    EXPECT_EQ(ss.setOf(0x400), std::min(a, b));
    EXPECT_EQ(ss.setOf(0x804), std::min(a, b));
}

TEST(StoreSet, SecondViolationJoinsExistingSet)
{
    StoreSet ss;
    ss.violation(0x400, 0x800);
    ss.violation(0x500, 0x800); // new load joins the store's set
    EXPECT_EQ(ss.setOf(0x500), ss.setOf(0x800));
}

TEST(StoreSet, ClearForgetsEverything)
{
    StoreSet ss;
    ss.violation(0x400, 0x800);
    ss.storeFetched(ss.setOf(0x800), 42);
    ss.clear();
    EXPECT_EQ(ss.setOf(0x400), StoreSet::invalidSet);
    EXPECT_EQ(ss.dependence(0x400), 0u);
}

TEST(StoreSet, ViolationStatCounted)
{
    StoreSet ss;
    ss.violation(0x400, 0x800);
    ss.violation(0x404, 0x808);
    EXPECT_EQ(ss.stats().counterValue("violations"), 2u);
}

TEST(StoreSet, InvalidSetOperationsAreNoops)
{
    StoreSet ss;
    ss.storeFetched(StoreSet::invalidSet, 7);
    ss.storeExecuted(StoreSet::invalidSet, 7);
    EXPECT_EQ(ss.dependence(0x123), 0u);
}
