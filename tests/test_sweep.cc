/**
 * @file
 * Sweep-engine tests: parallel execution must be bit-identical to
 * serial (full stats tree, not just headline cycles), results must come
 * back in submission order, thread-count selection must honour the env
 * override, and a failing job must surface as the rethrown first error.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/sweep.hh"

using namespace rowsim;

namespace
{

/** ≥8 distinct configs x 2 seeds, spanning both contention extremes and
 *  every policy family; small quotas keep the suite fast. */
std::vector<SweepJob>
jobMatrix()
{
    const ExpConfig configs[] = {
        eagerConfig(),
        eagerConfig(true),
        lazyConfig(),
        fencedConfig(),
        rowConfig(ContentionDetector::EW, PredictorUpdate::UpDown),
        rowConfig(ContentionDetector::RW,
                  PredictorUpdate::SaturateOnContention),
        rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown),
        rowConfig(ContentionDetector::RWDir,
                  PredictorUpdate::SaturateOnContention, true),
    };
    const char *workloads[] = {"pc", "canneal", "cq", "tpcc",
                               "sps", "freqmine", "barnes", "tatp"};
    std::vector<SweepJob> jobs;
    unsigned i = 0;
    for (const ExpConfig &cfg : configs) {
        for (std::uint64_t seed : {1ull, 7ull}) {
            SweepJob j;
            j.workload = workloads[i % 8];
            j.cfg = cfg;
            j.numCores = 8;
            j.quota = 40;
            j.seed = seed;
            j.captureStatsJson = true;
            jobs.push_back(std::move(j));
        }
        i++;
    }
    return jobs;
}

} // namespace

TEST(Sweep, ParallelBitIdenticalToSerial)
{
    const std::vector<SweepJob> jobs = jobMatrix();
    ASSERT_GE(jobs.size(), 16u);

    std::vector<RunResult> serial = SweepEngine(1).run(jobs);
    std::vector<RunResult> parallel = SweepEngine(8).run(jobs);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        EXPECT_EQ(serial[k].cycles, parallel[k].cycles) << k;
        EXPECT_FALSE(serial[k].statsJson.empty()) << k;
        EXPECT_EQ(serial[k].statsJson, parallel[k].statsJson)
            << jobs[k].workload << "/" << jobs[k].cfg.label << " seed "
            << jobs[k].seed;
    }
}

TEST(Sweep, ResultsInSubmissionOrder)
{
    std::vector<SweepJob> jobs;
    for (const char *w : {"pc", "canneal", "cq"}) {
        SweepJob j;
        j.workload = w;
        j.cfg = eagerConfig();
        j.numCores = 8;
        j.quota = 30;
        jobs.push_back(std::move(j));
    }
    std::vector<RunResult> results = SweepEngine(3).run(jobs);
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t k = 0; k < jobs.size(); ++k)
        EXPECT_EQ(results[k].workload, jobs[k].workload);
}

TEST(Sweep, MatchesDirectRunExperiment)
{
    SweepJob j;
    j.workload = "tpcc";
    j.cfg = lazyConfig();
    j.numCores = 8;
    j.quota = 40;
    j.captureStatsJson = true;
    std::vector<RunResult> viaSweep = SweepEngine(4).run({j});
    RunResult direct = runExperiment(j.workload, j.cfg, j.numCores,
                                     j.quota, j.seed, true);
    ASSERT_EQ(viaSweep.size(), 1u);
    EXPECT_EQ(viaSweep[0].cycles, direct.cycles);
    EXPECT_EQ(viaSweep[0].statsJson, direct.statsJson);
}

TEST(Sweep, FirstErrorInSubmissionOrderIsRethrown)
{
    std::vector<SweepJob> jobs;
    SweepJob good;
    good.workload = "canneal";
    good.cfg = eagerConfig();
    good.numCores = 8;
    good.quota = 20;
    jobs.push_back(good);
    SweepJob bad = good;
    bad.workload = "no-such-workload";
    jobs.push_back(bad);
    jobs.push_back(good);
    EXPECT_THROW(SweepEngine(2).run(jobs), std::runtime_error);
}

TEST(Sweep, DefaultThreadsHonoursEnvOverride)
{
    ::setenv("ROWSIM_SWEEP_THREADS", "3", 1);
    EXPECT_EQ(SweepEngine::defaultThreads(), 3u);
    EXPECT_EQ(SweepEngine(0).threads(), 3u);
    ::setenv("ROWSIM_SWEEP_THREADS", "0", 1);
    EXPECT_EQ(SweepEngine::defaultThreads(), 1u);
    ::unsetenv("ROWSIM_SWEEP_THREADS");
    EXPECT_GE(SweepEngine::defaultThreads(), 1u);
}
