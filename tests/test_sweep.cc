/**
 * @file
 * Sweep-engine tests: parallel execution must be bit-identical to
 * serial (full stats tree, not just headline cycles), results must come
 * back in submission order, thread-count selection must honour the env
 * override, and a failing job must surface as the rethrown first error.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/sweep.hh"

using namespace rowsim;

namespace
{

/** ≥8 distinct configs x 2 seeds, spanning both contention extremes and
 *  every policy family; small quotas keep the suite fast. */
std::vector<SweepJob>
jobMatrix()
{
    const ExpConfig configs[] = {
        eagerConfig(),
        eagerConfig(true),
        lazyConfig(),
        fencedConfig(),
        rowConfig(ContentionDetector::EW, PredictorUpdate::UpDown),
        rowConfig(ContentionDetector::RW,
                  PredictorUpdate::SaturateOnContention),
        rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown),
        rowConfig(ContentionDetector::RWDir,
                  PredictorUpdate::SaturateOnContention, true),
    };
    const char *workloads[] = {"pc", "canneal", "cq", "tpcc",
                               "sps", "freqmine", "barnes", "tatp"};
    std::vector<SweepJob> jobs;
    unsigned i = 0;
    for (const ExpConfig &cfg : configs) {
        for (std::uint64_t seed : {1ull, 7ull}) {
            SweepJob j;
            j.workload = workloads[i % 8];
            j.cfg = cfg;
            j.numCores = 8;
            j.quota = 40;
            j.seed = seed;
            j.captureStatsJson = true;
            jobs.push_back(std::move(j));
        }
        i++;
    }
    return jobs;
}

} // namespace

TEST(Sweep, ParallelBitIdenticalToSerial)
{
    const std::vector<SweepJob> jobs = jobMatrix();
    ASSERT_GE(jobs.size(), 16u);

    std::vector<RunResult> serial = SweepEngine(1).run(jobs);
    std::vector<RunResult> parallel = SweepEngine(8).run(jobs);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        EXPECT_EQ(serial[k].cycles, parallel[k].cycles) << k;
        EXPECT_FALSE(serial[k].statsJson.empty()) << k;
        EXPECT_EQ(serial[k].statsJson, parallel[k].statsJson)
            << jobs[k].workload << "/" << jobs[k].cfg.label << " seed "
            << jobs[k].seed;
    }
}

TEST(Sweep, ResultsInSubmissionOrder)
{
    std::vector<SweepJob> jobs;
    for (const char *w : {"pc", "canneal", "cq"}) {
        SweepJob j;
        j.workload = w;
        j.cfg = eagerConfig();
        j.numCores = 8;
        j.quota = 30;
        jobs.push_back(std::move(j));
    }
    std::vector<RunResult> results = SweepEngine(3).run(jobs);
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t k = 0; k < jobs.size(); ++k)
        EXPECT_EQ(results[k].workload, jobs[k].workload);
}

TEST(Sweep, MatchesDirectRunExperiment)
{
    SweepJob j;
    j.workload = "tpcc";
    j.cfg = lazyConfig();
    j.numCores = 8;
    j.quota = 40;
    j.captureStatsJson = true;
    std::vector<RunResult> viaSweep = SweepEngine(4).run({j});
    RunResult direct = runExperiment(j.workload, j.cfg, j.numCores,
                                     j.quota, j.seed, true);
    ASSERT_EQ(viaSweep.size(), 1u);
    EXPECT_EQ(viaSweep[0].cycles, direct.cycles);
    EXPECT_EQ(viaSweep[0].statsJson, direct.statsJson);
}

TEST(Sweep, StrictModeRethrowsFirstErrorInSubmissionOrder)
{
    std::vector<SweepJob> jobs;
    SweepJob good;
    good.workload = "canneal";
    good.cfg = eagerConfig();
    good.numCores = 8;
    good.quota = 20;
    jobs.push_back(good);
    SweepJob bad = good;
    bad.workload = "no-such-workload";
    jobs.push_back(bad);
    jobs.push_back(good);
    SweepOptions strict;
    strict.threads = 2;
    strict.strict = true;
    EXPECT_THROW(SweepEngine(strict).run(jobs), std::runtime_error);
}

TEST(Sweep, ErrorsCapturedPerJobWithoutAborting)
{
    std::vector<SweepJob> jobs;
    SweepJob good;
    good.workload = "canneal";
    good.cfg = eagerConfig();
    good.numCores = 8;
    good.quota = 20;
    jobs.push_back(good);
    SweepJob bad = good;
    bad.workload = "no-such-workload";
    jobs.push_back(bad);
    jobs.push_back(good);

    // Default mode: the failed job is reported in place, the rest of
    // the sweep completes.
    std::vector<RunResult> results = SweepEngine(2).run(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok());
    EXPECT_GT(results[0].cycles, 0u);
    EXPECT_FALSE(results[1].ok());
    EXPECT_EQ(results[1].status, RunStatus::Failed);
    EXPECT_EQ(results[1].workload, "no-such-workload");
    EXPECT_FALSE(results[1].error.empty());
    EXPECT_TRUE(results[2].ok());
    EXPECT_GT(results[2].cycles, 0u);

    // The failure rides along in the JSON report; ok lines stay clean.
    EXPECT_NE(results[1].toJson().find("\"status\":\"failed\""),
              std::string::npos);
    EXPECT_EQ(results[0].toJson().find("\"status\""), std::string::npos);
}

TEST(Sweep, DefaultThreadsHonoursEnvOverride)
{
    ::setenv("ROWSIM_SWEEP_THREADS", "3", 1);
    EXPECT_EQ(SweepEngine::defaultThreads(), 3u);
    EXPECT_EQ(SweepEngine(0).threads(), 3u);
    ::setenv("ROWSIM_SWEEP_THREADS", "0", 1);
    EXPECT_EQ(SweepEngine::defaultThreads(), 1u);
    ::unsetenv("ROWSIM_SWEEP_THREADS");
    EXPECT_GE(SweepEngine::defaultThreads(), 1u);
}

TEST(Sweep, OptionsFromEnv)
{
    ::setenv("ROWSIM_SWEEP_ISOLATE", "process", 1);
    ::setenv("ROWSIM_SWEEP_TIMEOUT_MS", "1234", 1);
    ::setenv("ROWSIM_SWEEP_RETRIES", "2", 1);
    ::setenv("ROWSIM_SWEEP_BACKOFF_MS", "7", 1);
    SweepOptions o = SweepOptions::fromEnv();
    EXPECT_EQ(o.isolation, SweepIsolation::Process);
    EXPECT_EQ(o.timeoutMs, 1234u);
    EXPECT_EQ(o.retries, 2u);
    EXPECT_EQ(o.backoffMs, 7u);
    EXPECT_FALSE(o.strict);
    ::unsetenv("ROWSIM_SWEEP_ISOLATE");
    ::unsetenv("ROWSIM_SWEEP_TIMEOUT_MS");
    ::unsetenv("ROWSIM_SWEEP_RETRIES");
    ::unsetenv("ROWSIM_SWEEP_BACKOFF_MS");
    EXPECT_EQ(SweepOptions::fromEnv().isolation, SweepIsolation::Thread);
}

TEST(Sweep, ProcessIsolationBitIdenticalToThreaded)
{
    std::vector<SweepJob> jobs;
    for (const char *w : {"pc", "cq", "tpcc"}) {
        SweepJob j;
        j.workload = w;
        j.cfg = w[0] == 'p' ? eagerConfig() : lazyConfig();
        j.numCores = 8;
        j.quota = 40;
        j.captureStatsJson = true;
        jobs.push_back(std::move(j));
    }
    std::vector<RunResult> threaded = SweepEngine(2).run(jobs);

    SweepOptions iso;
    iso.threads = 2;
    iso.isolation = SweepIsolation::Process;
    std::vector<RunResult> isolated = SweepEngine(iso).run(jobs);

    ASSERT_EQ(isolated.size(), jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        ASSERT_TRUE(isolated[k].ok()) << isolated[k].error;
        EXPECT_EQ(isolated[k].cycles, threaded[k].cycles) << k;
        EXPECT_EQ(isolated[k].statsJson, threaded[k].statsJson)
            << jobs[k].workload;
    }
}

TEST(Sweep, ProcessIsolationToleratesCrashAndHang)
{
    SweepJob good;
    good.workload = "canneal";
    good.cfg = eagerConfig();
    good.numCores = 8;
    good.quota = 20;

    std::vector<SweepJob> jobs;
    jobs.push_back(good);
    SweepJob crash = good;
    crash.injectCrash = true;
    jobs.push_back(crash);
    SweepJob hang = good;
    hang.injectHangMs = 60000;
    jobs.push_back(hang);
    jobs.push_back(good);

    SweepOptions iso;
    iso.threads = 4;
    iso.isolation = SweepIsolation::Process;
    iso.timeoutMs = 1500;
    iso.retries = 1;
    iso.backoffMs = 10;
    std::vector<RunResult> results = SweepEngine(iso).run(jobs);

    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[0].ok());
    EXPECT_TRUE(results[3].ok());
    EXPECT_EQ(results[0].cycles, results[3].cycles);

    EXPECT_EQ(results[1].status, RunStatus::Crashed);
    EXPECT_EQ(results[1].attempts, 2u); // retried once, then gave up
    EXPECT_FALSE(results[1].error.empty());

    EXPECT_EQ(results[2].status, RunStatus::TimedOut);
    EXPECT_EQ(results[2].attempts, 2u);
}

TEST(Sweep, ProcessIsolationReportsCleanFailureWithoutRetry)
{
    SweepJob bad;
    bad.workload = "no-such-workload";
    bad.cfg = eagerConfig();
    bad.numCores = 8;
    bad.quota = 20;

    SweepOptions iso;
    iso.isolation = SweepIsolation::Process;
    iso.retries = 3; // must NOT be spent on a deterministic failure
    iso.backoffMs = 10;
    std::vector<RunResult> results = SweepEngine(iso).run({bad});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, RunStatus::Failed);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_FALSE(results[0].error.empty());
}
