/**
 * @file
 * Functional fast-mode + sampling tests: a func-warmed checkpoint must
 * resume into detail mode bit-identically to the in-process
 * continuation; the functional interpreter must reproduce the detail
 * run's mode-independent architectural facts (funcStateDigest) on
 * order-insensitive workloads at matched instruction counts; sampled
 * runs must be deterministic across sweep thread counts and isolation
 * modes; the "sampling" report key must appear exactly when
 * ROWSIM_SAMPLE is active; and malformed specs / incompatible
 * observability setups must fail loudly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/sampling.hh"
#include "sim/snapshot.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

std::string
statsJsonOf(System &sys)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *mem = open_memstream(&buf, &len);
    EXPECT_NE(mem, nullptr);
    sys.dumpStatsJson(mem);
    std::fclose(mem);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

std::unique_ptr<System>
makeSystem(const std::string &workload, const ExpConfig &cfg,
           unsigned cores, std::uint64_t seed)
{
    return std::make_unique<System>(
        makeParams(cfg, cores, seed),
        makeStreams(profileFor(workload), cores, seed));
}

struct ScopedEnv
{
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char *name_;
};

/** A fresh per-test scratch directory under the build tree. */
std::string
scratchDir(const std::string &tag)
{
    const std::string dir = "funcmode-scratch-" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

// The tentpole contract: any func-mode cycle boundary is a legal
// snapshot point, and the ordinary save/restore round-trips
// func-warmed state into a detail run. A detail run resumed from a
// restored func checkpoint must be bit-identical — cycles, stats tree,
// state digest — to the detail continuation of the System that wrote
// the checkpoint.
TEST(FuncMode, FuncWarmCheckpointResumesDetailBitIdentically)
{
    struct Case
    {
        const char *workload;
        ExpConfig cfg;
    };
    // cq and sps exercise CAS/Swap and shared plain stores through the
    // functional interpreter; this test needs no cross-mode
    // order-insensitivity, only self-consistency of the snapshot.
    const Case cases[] = {
        {"counter", eagerConfig()},
        {"cq", lazyConfig()},
        {"sps", rowConfig(ContentionDetector::RWDir,
                          PredictorUpdate::SaturateOnContention)},
    };
    const unsigned cores = 4;
    const std::uint64_t seed = 3, quota = 120, warm = 40;
    const std::string dir = scratchDir("resume");

    for (const auto &c : cases) {
        SCOPED_TRACE(std::string(c.workload) + "/" + c.cfg.label);
        const std::string path =
            dir + "/" + c.workload + "-" + c.cfg.label + ".ckpt";

        auto a = makeSystem(c.workload, c.cfg, cores, seed);
        a->runFunctional(quota, warm);
        a->saveCheckpoint(path);
        const Cycle a_cycles = a->run(quota);
        const std::string a_stats = statsJsonOf(*a);
        const std::string a_digest = a->stateDigest();

        auto b = makeSystem(c.workload, c.cfg, cores, seed);
        b->restoreCheckpoint(path);
        EXPECT_EQ(b->run(quota), a_cycles)
            << "detail resume from the func checkpoint diverged";
        EXPECT_EQ(statsJsonOf(*b), a_stats)
            << "stats tree diverged after func-warm restore";
        EXPECT_EQ(b->stateDigest(), a_digest);
    }
    std::filesystem::remove_all(dir);
}

// Cross-validation invariant (the nightly drill, in miniature): on an
// order-insensitive workload, a func replay to the detail run's
// per-core committed instruction counts reproduces the
// mode-independent architectural facts exactly.
TEST(FuncMode, FuncStateDigestMatchesDetailAtMatchedInstCounts)
{
    for (const char *wl : {"counter", "streamcluster"}) {
        for (const ExpConfig &cfg :
             {eagerConfig(), lazyConfig(),
              rowConfig(ContentionDetector::RWDir,
                        PredictorUpdate::SaturateOnContention)}) {
            SCOPED_TRACE(std::string(wl) + "/" + cfg.label);
            const unsigned cores = 4;
            const std::uint64_t seed = 7, quota = 80;

            auto detail = makeSystem(wl, cfg, cores, seed);
            detail->run(quota);
            detail->drain(); // store buffers must reach the value memory
            std::vector<std::uint64_t> targets;
            for (CoreId c = 0; c < cores; c++)
                targets.push_back(detail->core(c).committedInstructions());

            auto func = makeSystem(wl, cfg, cores, seed);
            func->runFunctionalToInstCounts(targets);
            EXPECT_EQ(func->funcStateDigest(), detail->funcStateDigest());
            EXPECT_LT(func->now(), detail->now() / 10)
                << "func mode should be far cheaper in simulated ticks";
        }
    }
}

// ROWSIM_MODE plumbing: func runs go through the ordinary experiment
// harness, commit real work, and cost far fewer simulated cycles; the
// explicit ExpConfig::mode overrides the environment.
TEST(FuncMode, ModeSelectsTheFunctionalPath)
{
    const RunResult detail = runExperiment("counter", eagerConfig(), 4, 80);
    ASSERT_TRUE(detail.ok());

    ScopedEnv mode("ROWSIM_MODE", "func");
    const RunResult func = runExperiment("counter", eagerConfig(), 4, 80);
    ASSERT_TRUE(func.ok());
    EXPECT_GT(func.instructions, 0u);
    EXPECT_GT(func.atomicsCommitted, 0u);
    EXPECT_LT(func.cycles, detail.cycles / 10);

    // Params override the environment.
    ExpConfig cfg = eagerConfig();
    cfg.mode = "detail";
    const RunResult forced = runExperiment("counter", cfg, 4, 80);
    EXPECT_EQ(forced.cycles, detail.cycles);

    ::setenv("ROWSIM_MODE", "bogus", 1);
    EXPECT_THROW(runExperiment("counter", eagerConfig(), 4, 80),
                 std::runtime_error);
}

// The sampling spec parser: shape, defaults, and loud failures.
TEST(FuncMode, SampleSpecParsing)
{
    EXPECT_FALSE(parseSampleSpec("X", "").active);

    const SampleSpec s = parseSampleSpec("X", "8:2:5");
    EXPECT_TRUE(s.active);
    EXPECT_EQ(s.checkpoints, 8u);
    EXPECT_EQ(s.warmIters, 2u);
    EXPECT_EQ(s.detailIters, 5u);
    EXPECT_DOUBLE_EQ(s.confidence, 0.95);

    EXPECT_DOUBLE_EQ(parseSampleSpec("X", "4:0:3:0.99").confidence, 0.99);

    for (const char *bad : {"8", "8:2", "0:1:1", "4:1:0", "4:1:2:1.5",
                            "4:1:2:0.9x", "nope"}) {
        EXPECT_THROW(parseSampleSpec("X", bad), std::runtime_error)
            << "spec '" << bad << "' should be rejected";
    }

    const auto grid = sampleGrid(150, 8);
    ASSERT_EQ(grid.size(), 8u);
    for (unsigned k = 0; k < 8; k++)
        EXPECT_EQ(grid[k], 150u * k / 8);
}

// Sampled runs must be a pure function of the job set: identical
// across sweep thread counts and across thread/process isolation.
TEST(FuncMode, SampledRunDeterministicAcrossThreadsAndIsolation)
{
    const std::string dir = scratchDir("sample-det");
    ScopedEnv ckpt("ROWSIM_CKPT_DIR", dir);
    ScopedEnv sample("ROWSIM_SAMPLE", "4:1:4");

    ::setenv("ROWSIM_SWEEP_THREADS", "1", 1);
    const RunResult one = runExperiment("counter", eagerConfig(), 4, 80);
    ASSERT_TRUE(one.ok());
    ASSERT_FALSE(one.samplingJson.empty());

    ::setenv("ROWSIM_SWEEP_THREADS", "8", 1);
    const RunResult eight = runExperiment("counter", eagerConfig(), 4, 80);
    EXPECT_EQ(eight.samplingJson, one.samplingJson);
    EXPECT_EQ(eight.toJson(), one.toJson());

    ::setenv("ROWSIM_SWEEP_ISOLATE", "process", 1);
    const RunResult isolated =
        runExperiment("counter", eagerConfig(), 4, 80);
    EXPECT_EQ(isolated.samplingJson, one.samplingJson);
    EXPECT_EQ(isolated.toJson(), one.toJson());

    ::unsetenv("ROWSIM_SWEEP_ISOLATE");
    ::unsetenv("ROWSIM_SWEEP_THREADS");
    std::filesystem::remove_all(dir);
}

// Sampled aggregate shape: the grid follows the documented arithmetic,
// every window reports, and the run report carries the "sampling" key
// — which must be absent (and the summary empty) without ROWSIM_SAMPLE,
// preserving the historical report byte layout.
TEST(FuncMode, SamplingReportShapeAndAbsence)
{
    const std::string dir = scratchDir("sample-shape");
    ScopedEnv ckpt("ROWSIM_CKPT_DIR", dir);

    const RunResult plain = runExperiment("counter", eagerConfig(), 4, 80);
    EXPECT_TRUE(plain.samplingJson.empty());
    EXPECT_EQ(plain.toJson().find("\"sampling\""), std::string::npos)
        << "non-sampled reports must not grow a sampling key";

    {
        ScopedEnv sample("ROWSIM_SAMPLE", "4:1:4");
        const RunResult s = runExperiment("counter", eagerConfig(), 4, 80);
        ASSERT_TRUE(s.ok());
        EXPECT_NE(s.toJson().find("\"sampling\":{"), std::string::npos);
        EXPECT_NE(s.samplingJson.find("\"grid\":[0,20,40,60]"),
                  std::string::npos);
        EXPECT_NE(s.samplingJson.find("\"checkpoints\":4"),
                  std::string::npos);
        for (unsigned k = 0; k < 4; k++) {
            EXPECT_NE(s.samplingJson.find(strprintf("\"k\":%u", k)),
                      std::string::npos);
        }
        // The extrapolated headline estimate must land in the right
        // regime (the detail reference for this setup is ~30 Kcycles).
        EXPECT_GT(s.cycles, plain.cycles / 4);
        EXPECT_LT(s.cycles, plain.cycles * 4);
    }
    std::filesystem::remove_all(dir);
}

// Sampling windows are first-class result-store citizens: a sampled
// rerun with the store enabled recomputes nothing (every window is a
// hit), and still reproduces the aggregate byte-identically.
TEST(FuncMode, SampledWindowsServeFromResultStore)
{
    const std::string dir = scratchDir("sample-store");
    ScopedEnv ckpt("ROWSIM_CKPT_DIR", dir + "/ckpt");
    ScopedEnv results("ROWSIM_RESULTS", "on");
    ScopedEnv resultsDir("ROWSIM_RESULTS_DIR", dir + "/store");
    ScopedEnv sample("ROWSIM_SAMPLE", "3:1:3");

    const RunResult cold = runExperiment("counter", lazyConfig(), 4, 60);
    ASSERT_TRUE(cold.ok());
    EXPECT_NE(cold.samplingJson.find("\"fromCache\":false"),
              std::string::npos);
    EXPECT_EQ(cold.samplingJson.find("\"fromCache\":true"),
              std::string::npos);

    const RunResult warm = runExperiment("counter", lazyConfig(), 4, 60);
    ASSERT_TRUE(warm.ok());
    EXPECT_NE(warm.samplingJson.find("\"fromCache\":true"),
              std::string::npos);
    EXPECT_EQ(warm.samplingJson.find("\"fromCache\":false"),
              std::string::npos);

    // Identical apart from the cache provenance marker.
    std::string a = cold.samplingJson, b = warm.samplingJson;
    const std::string f = "\"fromCache\":false", t = "\"fromCache\":true";
    for (std::size_t at; (at = a.find(f)) != std::string::npos;)
        a.replace(at, f.size(), t);
    EXPECT_EQ(a, b);

    std::filesystem::remove_all(dir);
}

// Func and detail runs of one configuration share a config fingerprint
// by design (checkpoints interchange) — the result store must still
// never serve one mode's entry to the other.
TEST(FuncMode, ResultStoreKeysDetailAndFuncApart)
{
    const std::string dir = scratchDir("store-mode");
    ScopedEnv results("ROWSIM_RESULTS", "on");
    ScopedEnv resultsDir("ROWSIM_RESULTS_DIR", dir);

    const RunResult detail = runExperiment("counter", eagerConfig(), 4, 60);
    ASSERT_TRUE(detail.ok());
    EXPECT_FALSE(detail.fromCache);

    ScopedEnv mode("ROWSIM_MODE", "func");
    const RunResult func = runExperiment("counter", eagerConfig(), 4, 60);
    ASSERT_TRUE(func.ok());
    EXPECT_FALSE(func.fromCache)
        << "a func run must not be served the detail run's entry";
    EXPECT_LT(func.cycles, detail.cycles / 10);

    const RunResult funcAgain =
        runExperiment("counter", eagerConfig(), 4, 60);
    EXPECT_TRUE(funcAgain.fromCache);
    EXPECT_EQ(funcAgain.cycles, func.cycles);

    std::filesystem::remove_all(dir);
}

// Incompatible setups fail loudly instead of producing subtly wrong
// numbers: sampling under the attribution profiler or a
// convergence-bounded run, func mode under fault injection.
TEST(FuncMode, IncompatibleSetupsAreFatal)
{
    ScopedEnv sample("ROWSIM_SAMPLE", "2:1:2");
    {
        // Via the params route — Profiler::envMask() is parsed once per
        // process, so flipping ROWSIM_PROFILE mid-test cannot stick.
        ExpConfig profiled = eagerConfig();
        profiled.profile = "cpi";
        EXPECT_THROW(runExperiment("counter", profiled, 4, 60),
                     std::runtime_error);
    }
    {
        ScopedEnv conv("ROWSIM_CONVERGE", "instructions:0.2");
        EXPECT_THROW(runExperiment("counter", eagerConfig(), 4, 60),
                     std::runtime_error);
    }
    ::unsetenv("ROWSIM_SAMPLE");
    {
        ScopedEnv mode("ROWSIM_MODE", "func");
        ScopedEnv faults("ROWSIM_FAULTS", "all");
        EXPECT_THROW(runExperiment("counter", eagerConfig(), 4, 60),
                     std::runtime_error);
    }
}
