/**
 * @file
 * Tests for the extension features beyond the paper's main design: the
 * +2/-1 predictor update rule (§IV-D, evaluated-and-rejected variant)
 * and the explicit directory-notification contention detector (§IV-C's
 * alternative approach).
 */

#include <gtest/gtest.h>

#include "row/predictor.hh"
#include "sim/experiment.hh"

using namespace rowsim;

namespace
{
RowConfig
cfg(PredictorUpdate u)
{
    RowConfig c;
    c.update = u;
    return c;
}
} // namespace

TEST(TwoUpOneDown, AddsTwoPerContention)
{
    ContentionPredictor p(cfg(PredictorUpdate::TwoUpOneDown));
    p.update(0x40, true); // counter 2 > threshold 1
    EXPECT_TRUE(p.predictContended(0x40));
    EXPECT_EQ(p.counter(p.index(0x40)), 2u);
}

TEST(TwoUpOneDown, DecaysOnePerCalmUpdate)
{
    ContentionPredictor p(cfg(PredictorUpdate::TwoUpOneDown));
    p.update(0x40, true);
    p.update(0x40, false); // back to 1
    EXPECT_FALSE(p.predictContended(0x40));
}

TEST(TwoUpOneDown, SaturatesAtMax)
{
    ContentionPredictor p(cfg(PredictorUpdate::TwoUpOneDown));
    for (int i = 0; i < 20; i++)
        p.update(0x40, true);
    EXPECT_EQ(p.counter(p.index(0x40)), 15u);
}

TEST(DirNotify, DetectsContentionOnHotWorkload)
{
    auto c = rowConfig(ContentionDetector::RWDirNotify,
                       PredictorUpdate::SaturateOnContention);
    RunResult hot = runExperiment("pc", c, 16, 50);
    ASSERT_GT(hot.atomicsUnlocked, 0u);
    EXPECT_GT(static_cast<double>(hot.detectedContended) /
                  static_cast<double>(hot.atomicsUnlocked),
              0.5);
    // And it sends the contended atomics lazy.
    EXPECT_GT(hot.lazyIssued, hot.eagerIssued);
}

TEST(DirNotify, QuietOnUncontendedWorkload)
{
    auto c = rowConfig(ContentionDetector::RWDirNotify,
                       PredictorUpdate::SaturateOnContention);
    RunResult cold = runExperiment("canneal", c, 16, 60);
    ASSERT_GT(cold.atomicsUnlocked, 0u);
    EXPECT_LT(static_cast<double>(cold.detectedContended) /
                  static_cast<double>(cold.atomicsUnlocked),
              0.05);
}

TEST(DirNotify, PerformanceComparableToLatencyHeuristic)
{
    // The paper rejects directory notification for protocol-invasiveness
    // reasons, not performance; both should land near lazy on pc.
    RunResult ntf = runExperiment(
        "pc", rowConfig(ContentionDetector::RWDirNotify,
                        PredictorUpdate::SaturateOnContention), 16, 50);
    RunResult dir = runExperiment(
        "pc", rowConfig(ContentionDetector::RWDir,
                        PredictorUpdate::SaturateOnContention), 16, 50);
    double ratio = static_cast<double>(ntf.cycles) /
                   static_cast<double>(dir.cycles);
    EXPECT_NEAR(ratio, 1.0, 0.25);
}

TEST(DirNotify, LabelsResolve)
{
    auto c = rowConfig(ContentionDetector::RWDirNotify,
                       PredictorUpdate::TwoUpOneDown, true);
    EXPECT_EQ(c.label, "RW+DirNtf_+2/-1+fwd");
}
